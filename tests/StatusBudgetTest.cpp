//===- tests/StatusBudgetTest.cpp - Error channel & effort budgets -------===//
//
// Covers support/Status.h (Error, Result), support/Budget.h (parse,
// relaxed, trip/cancellation semantics), the Formula::tryEvaluate typed
// error for quantifiers, and the §4.6 degradation contract of
// countSolutionsBudgeted: exact under a generous budget, certified
// lower/upper bounds under a tiny one, identical across worker counts.
//
//===----------------------------------------------------------------------===//

#include "counting/Summation.h"
#include "presburger/Parser.h"
#include "support/Budget.h"
#include "support/QueryContext.h"
#include "support/Status.h"

#include <gtest/gtest.h>

#include <chrono>
#include <sstream>
#include <thread>

using namespace omega;

namespace {

//===----------------------------------------------------------------------===//
// Error / Result
//===----------------------------------------------------------------------===//

TEST(StatusTest, ErrorToString) {
  Error E{ErrorKind::Parse, "parser", "unexpected token", "offset 12"};
  EXPECT_EQ(E.toString(),
            "parse error in parser at offset 12: unexpected token");
  Error NoWhere{ErrorKind::Internal, "", "impossible state", ""};
  EXPECT_EQ(NoWhere.toString(), "internal error: impossible state");
  Error NoLoc{ErrorKind::BudgetExhausted, "projection", "splinters=8", ""};
  EXPECT_EQ(NoLoc.toString(),
            "budget exhausted in projection: splinters=8");
}

TEST(StatusTest, ResultRoundTrip) {
  Result<int> Ok(42);
  ASSERT_TRUE(Ok.ok());
  EXPECT_EQ(*Ok, 42);
  EXPECT_EQ(Ok.valueOr(-1), 42);

  Result<int> Bad(Error{ErrorKind::InvalidInput, "test", "nope", ""});
  EXPECT_FALSE(Bad.ok());
  EXPECT_FALSE(static_cast<bool>(Bad));
  EXPECT_EQ(Bad.valueOr(-1), -1);
  EXPECT_EQ(Bad.error().Kind, ErrorKind::InvalidInput);
  EXPECT_EQ(Bad.error().Message, "nope");
}

//===----------------------------------------------------------------------===//
// EffortBudget parsing and arithmetic
//===----------------------------------------------------------------------===//

TEST(BudgetTest, ParseFull) {
  Result<EffortBudget> B =
      EffortBudget::parse("bits=64,splinters=8,clauses=128,depth=16,ms=500");
  ASSERT_TRUE(B.ok());
  EXPECT_EQ(B->MaxCoefficientBits, 64u);
  EXPECT_EQ(B->MaxSplintersPerElimination, 8u);
  EXPECT_EQ(B->MaxDnfClauses, 128u);
  EXPECT_EQ(B->MaxRecursionDepth, 16u);
  EXPECT_EQ(B->DeadlineMs, 500u);
  EXPECT_EQ(B->toString(), "bits=64,splinters=8,clauses=128,depth=16,ms=500");
}

TEST(BudgetTest, ParseSubsetAndEmpty) {
  Result<EffortBudget> B = EffortBudget::parse("clauses=4");
  ASSERT_TRUE(B.ok());
  EXPECT_EQ(B->MaxDnfClauses, 4u);
  EXPECT_FALSE(B->unlimited());
  EXPECT_EQ(B->toString(), "clauses=4");

  Result<EffortBudget> Empty = EffortBudget::parse("");
  ASSERT_TRUE(Empty.ok());
  EXPECT_TRUE(Empty->unlimited());
  EXPECT_EQ(Empty->toString(), "unlimited");
}

TEST(BudgetTest, ParseRejectsMalformed) {
  EXPECT_FALSE(EffortBudget::parse("frobs=3").ok());
  EXPECT_FALSE(EffortBudget::parse("splinters").ok());
  EXPECT_FALSE(EffortBudget::parse("splinters=").ok());
  EXPECT_FALSE(EffortBudget::parse("splinters=abc").ok());
  EXPECT_FALSE(EffortBudget::parse("splinters=99999999999999999999999").ok());
  // Diagnostics carry the offending offset.
  Result<EffortBudget> Bad = EffortBudget::parse("bits=8,frobs=3");
  ASSERT_FALSE(Bad.ok());
  EXPECT_EQ(Bad.error().Kind, ErrorKind::InvalidInput);
  EXPECT_NE(Bad.error().Location.find("offset 7"), std::string::npos);
}

TEST(BudgetTest, RelaxedScalesOnlySetKnobs) {
  EffortBudget B;
  B.MaxDnfClauses = 4;
  EffortBudget R = B.relaxed(8);
  EXPECT_EQ(R.MaxDnfClauses, 32u);
  EXPECT_EQ(R.MaxSplintersPerElimination, 0u); // still unlimited
  EXPECT_EQ(R.MaxRecursionDepth, 0u);
}

//===----------------------------------------------------------------------===//
// Trip and cancellation semantics
//===----------------------------------------------------------------------===//

TEST(BudgetTest, ChargeTripsAndSetsToken) {
  EffortBudget B;
  B.MaxSplintersPerElimination = 2;
  auto State = std::make_shared<BudgetState>(B);
  BudgetScope Scope(State);
  EXPECT_NO_THROW(chargeSplinters(2, "test"));
  try {
    chargeSplinters(3, "test");
    FAIL() << "expected BudgetExceeded";
  } catch (const BudgetExceeded &E) {
    EXPECT_EQ(E.Limit, "splinters=2");
    EXPECT_EQ(E.Where, "test");
    EXPECT_EQ(E.toError().Kind, ErrorKind::BudgetExhausted);
  }
  // The shared token is now set: every later checkpoint bails, even ones
  // that would be within their own limit.
  EXPECT_TRUE(State->Cancelled.load());
  EXPECT_THROW(budgetCheckpoint("elsewhere"), BudgetExceeded);
  EXPECT_THROW(chargeSplinters(1, "elsewhere"), BudgetExceeded);
}

TEST(BudgetTest, CheckpointIsNoOpWithoutBudget) {
  EXPECT_NO_THROW(budgetCheckpoint("test"));
  EXPECT_NO_THROW(chargeClauses(1u << 20, "test"));
  EXPECT_NO_THROW(chargeDepth(1u << 20, "test"));
}

TEST(BudgetTest, DeadlineTripsAfterExpiry) {
  EffortBudget B;
  B.DeadlineMs = 1;
  BudgetScope Scope(std::make_shared<BudgetState>(B));
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_THROW(budgetCheckpoint("test"), BudgetExceeded);
}

//===----------------------------------------------------------------------===//
// Formula::tryEvaluate typed error (satellite: no abort on quantifiers)
//===----------------------------------------------------------------------===//

TEST(StatusTest, TryEvaluateRejectsQuantifiers) {
  ParseResult R = parseFormula("exists(k: i = 2*k) && 1 <= i <= 8");
  ASSERT_TRUE(R);
  Assignment At{{"i", BigInt(4)}};
  Result<bool> V = R.Value->tryEvaluate(At);
  ASSERT_FALSE(V.ok());
  EXPECT_EQ(V.error().Kind, ErrorKind::Unsupported);
  EXPECT_NE(V.error().Message.find("quantifier"), std::string::npos);

  // Quantifier-free formulas evaluate normally through the same channel.
  ParseResult QF = parseFormula("1 <= i <= 8");
  ASSERT_TRUE(QF);
  Result<bool> B = QF.Value->tryEvaluate(At);
  ASSERT_TRUE(B.ok());
  EXPECT_TRUE(*B);
}

//===----------------------------------------------------------------------===//
// Budgeted counting: the degradation contract
//===----------------------------------------------------------------------===//

Formula parseOk(const char *Text) {
  ParseResult R = parseFormula(Text);
  EXPECT_TRUE(R) << R.Error;
  return *R.Value;
}

TEST(BudgetedCountTest, GenerousBudgetStaysExact) {
  EffortBudget B;
  B.MaxDnfClauses = 1024;
  B.MaxRecursionDepth = 64;
  BudgetedCount BC = countSolutionsBudgeted(
      parseOk("1 <= i <= 10 || 20 <= i <= 24"), {"i"}, B);
  EXPECT_EQ(BC.Status, CountStatus::Exact);
  EXPECT_TRUE(BC.TrippedLimit.empty());
  EXPECT_EQ(BC.Value.evaluate({}), Rational(15));
}

TEST(BudgetedCountTest, TinyBudgetYieldsCertifiedBounds) {
  // clauses=1 trips as soon as the disjunction becomes a 2-clause DNF; the
  // relaxed (x8) degraded passes then complete.  True count is 15.
  EffortBudget B;
  B.MaxDnfClauses = 1;
  BudgetedCount BC = countSolutionsBudgeted(
      parseOk("1 <= i <= 10 || 20 <= i <= 24"), {"i"}, B);
  ASSERT_EQ(BC.Status, CountStatus::Bounded);
  EXPECT_EQ(BC.TrippedLimit, "clauses=1");
  ASSERT_FALSE(BC.Upper.isUnbounded());
  Rational Lo = BC.Lower.evaluate({});
  Rational Hi = BC.Upper.evaluate({});
  EXPECT_LE(Lo, Rational(15));
  EXPECT_LE(Rational(15), Hi);
  // Non-strided rectangles: dark and real shadows are both exact here.
  EXPECT_EQ(Lo, Rational(15));
  EXPECT_EQ(Hi, Rational(15));
}

TEST(BudgetedCountTest, SymbolicBoundsBracketTruth) {
  // Parametric query degraded by a depth cap; check the bounds bracket the
  // exact symbolic count at several symbol values.
  const char *Text = "(1 <= i <= n && 2*i <= 3*j && 1 <= j <= n)"
                     " || (n < i <= 2*n && j = i)";
  PiecewiseValue Exact = countSolutions(parseOk(Text), {"i", "j"});
  ASSERT_FALSE(Exact.isUnbounded());

  EffortBudget B;
  B.MaxRecursionDepth = 1;
  BudgetedCount BC = countSolutionsBudgeted(parseOk(Text), {"i", "j"}, B);
  ASSERT_EQ(BC.Status, CountStatus::Bounded);
  for (int64_t N : {0, 1, 3, 7, 11}) {
    Assignment At{{"n", BigInt(N)}};
    Rational True = Exact.evaluate(At);
    EXPECT_LE(BC.Lower.evaluate(At), True) << "n=" << N;
    if (!BC.Upper.isUnbounded())
      EXPECT_LE(True, BC.Upper.evaluate(At)) << "n=" << N;
  }
}

TEST(BudgetedCountTest, DegradedOutputIdenticalAcrossWorkerCounts) {
  const char *Text = "(1 <= i <= n && 2*i <= 3*j && 1 <= j <= n)"
                     " || (n < i <= 2*n && j = i)"
                     " || (1 <= i <= 4 && 5 <= j <= 9)";
  EffortBudget B;
  B.MaxRecursionDepth = 1;
  std::vector<std::string> Renderings;
  for (unsigned Workers : {0u, 1u, 4u}) {
    QueryContext Ctx;
    Ctx.Workers = Workers;
    QueryContextScope Scope(Ctx);
    BudgetedCount BC = countSolutionsBudgeted(parseOk(Text), {"i", "j"}, B);
    EXPECT_EQ(BC.Status, CountStatus::Bounded) << Workers << " workers";
    std::ostringstream OS;
    OS << BC.TrippedLimit << " | " << BC.Lower << " | " << BC.Upper;
    Renderings.push_back(OS.str());
  }
  EXPECT_EQ(Renderings[0], Renderings[1]);
  EXPECT_EQ(Renderings[0], Renderings[2]);
}

TEST(BudgetedCountTest, ParseLiteralGuardUnderBudget) {
  // A budget's bits= knob rejects absurd literals at parse time with a
  // positioned diagnostic instead of a throw.
  EffortBudget B;
  B.MaxCoefficientBits = 64;
  BudgetScope Scope(std::make_shared<BudgetState>(B));
  ParseResult R = parseFormula(
      "1 <= i <= 340282366920938463463374607431768211456");
  EXPECT_FALSE(R);
  EXPECT_NE(R.Error.find("bits=64"), std::string::npos);
}

} // namespace
