//===- tests/FuzzGen.h - Seeded random Presburger formula generator ------===//
//
// Part of OmegaCount (reproduction of Pugh, PLDI 1994).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Generates random but *enumerable* Presburger formulas for differential
/// and determinism testing.  Every case is constructed so the brute-force
/// oracle (baselines/Enumerator.h) is exact:
///
///   * each counted variable carries explicit interval bounds inside the
///     formula, all within [BoxLo, BoxHi];
///   * each existentially quantified variable is bounded inside its own
///     body, so every witness lies within [WitnessLo, WitnessHi] — this
///     also keeps negation sound for the oracle (outside the window the
///     bounded body is false, so the negation is decidable there too);
///   * at most two symbolic constants ("n", "m") appear, only in atom
///     right-hand sides, never in the bounds — so counts stay finite for
///     every symbol value.
///
/// Randomness uses mt19937_64 with modulo reduction rather than
/// <random> distributions: the raw engine sequence is mandated by the
/// standard, distributions are not, so seeds reproduce across platforms
/// and standard libraries.
///
//===----------------------------------------------------------------------===//

#ifndef OMEGA_TESTS_FUZZGEN_H
#define OMEGA_TESTS_FUZZGEN_H

#include <cstdint>
#include <random>
#include <sstream>
#include <string>
#include <vector>

namespace omega {
namespace fuzz {

/// One generated formula plus everything the oracle needs to check it.
struct FuzzCase {
  std::string Text;                 ///< Parsable formula text.
  std::vector<std::string> Vars;    ///< Counted variables ("i", "j").
  std::vector<std::string> Symbols; ///< Symbolic constants in use.
  int64_t BoxLo = 0, BoxHi = 0;     ///< Enumeration box for counted vars.
  int64_t WitnessLo = 0, WitnessHi = 0; ///< Search window for witnesses.
};

class Generator {
public:
  explicit Generator(uint64_t Seed) : Rng(Seed) {}

  FuzzCase next() {
    FuzzCase FC;
    FC.BoxLo = -8;
    FC.BoxHi = 14;
    FC.WitnessLo = -9;
    FC.WitnessHi = 12;
    QuantCount = 0;

    unsigned NumVars = 1 + range(0, 1);
    FC.Vars.assign({"i", "j"});
    FC.Vars.resize(NumVars);
    unsigned NumSyms = range(0, 2);
    FC.Symbols.assign({"n", "m"});
    FC.Symbols.resize(NumSyms);

    // The variable pool atoms draw from: counted vars + symbols.
    std::vector<std::string> Pool = FC.Vars;
    Pool.insert(Pool.end(), FC.Symbols.begin(), FC.Symbols.end());

    std::ostringstream OS;
    for (const std::string &V : FC.Vars) {
      int64_t Lo = range(-5, 3);
      int64_t Hi = Lo + range(3, 9);
      OS << Lo << " <= " << V << " <= " << Hi << " && ";
    }
    OS << "(" << tree(Pool, /*Depth=*/2) << ")";
    FC.Text = OS.str();
    return FC;
  }

private:
  std::mt19937_64 Rng;
  unsigned QuantCount = 0;

  /// Uniform-ish in [Lo, Hi] via modulo; bias is irrelevant for fuzzing and
  /// the sequence is reproducible everywhere.
  int64_t range(int64_t Lo, int64_t Hi) {
    return Lo + static_cast<int64_t>(Rng() % static_cast<uint64_t>(Hi - Lo + 1));
  }

  /// A nonzero coefficient in [-3, 3].
  int64_t coef() {
    int64_t C = range(-3, 2);
    return C >= 0 ? C + 1 : C;
  }

  /// A random affine expression over 1-2 pool variables plus a constant.
  std::string affine(const std::vector<std::string> &Pool) {
    std::ostringstream OS;
    unsigned Terms = 1 + range(0, 1);
    for (unsigned T = 0; T < Terms; ++T) {
      int64_t C = coef();
      const std::string &V = Pool[range(0, int64_t(Pool.size()) - 1)];
      if (T)
        OS << (C < 0 ? " - " : " + ") << (C < 0 ? -C : C) << "*" << V;
      else
        OS << C << "*" << V;
    }
    int64_t K = range(-8, 8);
    OS << (K < 0 ? " - " : " + ") << (K < 0 ? -K : K);
    return OS.str();
  }

  /// A relational or stride atom.
  std::string atom(const std::vector<std::string> &Pool) {
    if (range(0, 4) == 0) { // stride: m | expr
      int64_t Mod = range(2, 4);
      std::ostringstream OS;
      OS << Mod << " | " << affine(Pool);
      return OS.str();
    }
    static const char *Ops[] = {"<=", ">=", "=", "!="};
    std::ostringstream OS;
    OS << affine(Pool) << " " << Ops[range(0, 3)] << " " << range(-8, 8);
    return OS.str();
  }

  /// A random formula tree with the given remaining depth budget.
  std::string tree(const std::vector<std::string> &Pool, unsigned Depth) {
    int64_t Pick = range(0, 9);
    if (Depth == 0 || Pick <= 4)
      return atom(Pool);
    if (Pick <= 6) { // binary connective
      const char *Op = range(0, 1) ? " && " : " || ";
      unsigned Kids = 2 + range(0, 1);
      std::ostringstream OS;
      for (unsigned K = 0; K < Kids; ++K) {
        if (K)
          OS << Op;
        OS << "(" << tree(Pool, Depth - 1) << ")";
      }
      return OS.str();
    }
    if (Pick == 7) // negation
      return "!(" + tree(Pool, Depth - 1) + ")";
    // Existential with an internally bounded witness (see file comment).
    if (QuantCount >= 2)
      return atom(Pool);
    std::string Q = "q" + std::to_string(QuantCount++);
    int64_t Lo = range(-6, 2);
    int64_t Hi = Lo + range(2, 8);
    std::vector<std::string> Inner = Pool;
    Inner.push_back(Q);
    std::ostringstream OS;
    OS << "exists(" << Q << ": " << Lo << " <= " << Q << " <= " << Hi
       << " && (" << tree(Inner, Depth - 1) << "))";
    return OS.str();
  }
};

} // namespace fuzz
} // namespace omega

#endif // OMEGA_TESTS_FUZZGEN_H
