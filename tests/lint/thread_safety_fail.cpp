// Compile-fail fixture for the Clang capability analysis: reading and
// writing an OMEGA_GUARDED_BY field without holding its Mutex.  The
// thread_safety_fail ctest (and the ci.sh analyze leg) compile this with
// `-Wthread-safety -Werror=thread-safety -fsyntax-only` and require the
// compilation to FAIL — proving the annotations actually reject the bug
// class they exist for.  Under gcc the annotations are no-ops and this
// file compiles, which is why the test only runs under Clang.

#include "support/ThreadAnnotations.h"

namespace {

class Cache {
public:
  // BUG (intentional): touches Hits and Size without acquiring M.
  void recordHitUnlocked() {
    ++Hits;
    Size = Hits;
  }

private:
  omega::Mutex M;
  unsigned Hits OMEGA_GUARDED_BY(M) = 0;
  unsigned Size OMEGA_GUARDED_BY(M) = 0;
};

} // namespace

int main() {
  Cache C;
  C.recordHitUnlocked();
  return 0;
}
