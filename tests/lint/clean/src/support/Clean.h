// omegatidy positive fixture: a header that follows every rule — correct
// path-spelling guard, annotated locking through the ThreadAnnotations
// wrappers, exempt atomic/const/ConditionVariable members, and one
// deliberately suppressed naked-new.  OmegatidyTest asserts zero findings.
#ifndef OMEGA_SUPPORT_CLEAN_H
#define OMEGA_SUPPORT_CLEAN_H

#include "support/ThreadAnnotations.h"

#include <atomic>
#include <vector>

namespace omega {

class GuardedCounter {
public:
  void bump() {
    MutexLock Lock(M);
    ++Count;
  }

  struct Impl;

  Impl *make() {
    // Pimpl handed to a unique_ptr by the caller.
    // omegatidy: allow(naked-new)
    return new Impl;
  }

private:
  mutable Mutex M;
  long Count OMEGA_GUARDED_BY(M) = 0;
  std::vector<int> History OMEGA_GUARDED_BY(M);
  std::atomic<unsigned> Peeks{0};
  ConditionVariable Cv;
  const unsigned Capacity = 16;
  static constexpr unsigned Limit = 32;
};

} // namespace omega

#endif // OMEGA_SUPPORT_CLEAN_H
