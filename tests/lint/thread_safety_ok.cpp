// Companion to thread_safety_fail.cpp: the same guarded state accessed
// correctly through MutexLock.  Must compile *clean* under
// `-Wthread-safety -Werror=thread-safety`, proving the passing half of
// the capability analysis (no false positives on the blessed idiom).

#include "support/ThreadAnnotations.h"

namespace {

class Cache {
public:
  void recordHit() {
    omega::MutexLock Lock(M);
    ++Hits;
    Size = Hits;
  }

  unsigned size() {
    omega::MutexLock Lock(M);
    return Size;
  }

private:
  omega::Mutex M;
  unsigned Hits OMEGA_GUARDED_BY(M) = 0;
  unsigned Size OMEGA_GUARDED_BY(M) = 0;
};

} // namespace

int main() {
  Cache C;
  C.recordHit();
  return static_cast<int>(C.size()) - 1;
}
