// omegatidy negative fixture: every block below violates one rule.  This
// file is never compiled; it exists so OmegatidyTest can assert the linter
// reports exactly these findings (tests/ is outside the directories the
// omegatidy_tree test walks, so the violations never gate the build).
#ifndef WRONG_GUARD_H
#define WRONG_GUARD_H

#include "../escape/Path.h"
#include <cassert>
#include <mutex>

using namespace std;

struct RawLocking {
  std::mutex M;
  int Hits = 0;
};

struct NameKeyed {
  std::map<std::string, BigInt> Coeffs;
  std::unordered_map<std::string, VarId> Ids;
};

class Counter {
public:
  void bump();

private:
  Mutex M;
  long Count = 0;
  unsigned Capacity;
};

#endif // WRONG_GUARD_H
