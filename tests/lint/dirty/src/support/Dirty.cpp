// omegatidy negative fixture (never compiled): expression-level
// violations — assert in src/, naked allocation, unnamed TraceSpan,
// retired global-knob setters.

#include <assert.h>

void leaky() {
  assert(2 + 2 == 4);
  int *P = new int(3);
  char *Buf = static_cast<char *>(malloc(16));
  TraceSpan("phase");
  omega::TraceSpan("sub");
  free(Buf);
  delete P;
}

void knobs() {
  setWorkerCount(4);
  omega::setConjunctCacheCapacity(1 << 12);
  setArithOpCounting(true);
}
