//===- tests/OmegaTest.cpp - Omega test core: projection, feasibility ----===//

#include "omega/Omega.h"

#include "presburger/Parser.h"

#include <gtest/gtest.h>

#include <random>

using namespace omega;

namespace {

AffineExpr var(const char *N) { return AffineExpr::variable(N); }

/// True iff any clause contains the point.
bool unionContains(const std::vector<Conjunct> &Clauses,
                   const Assignment &A) {
  for (const Conjunct &C : Clauses)
    if (containsPoint(C, A))
      return true;
  return false;
}

/// Reference evaluator for formulas with quantifiers: quantified variables
/// range over [Lo, Hi].  Only valid when all witnesses lie in the box.
bool evalBox(const Formula &F, Assignment &A, int64_t Lo, int64_t Hi) {
  switch (F.kind()) {
  case FormulaKind::True:
    return true;
  case FormulaKind::False:
    return false;
  case FormulaKind::Atom:
    return F.constraint().holds(A);
  case FormulaKind::And:
    for (const Formula &C : F.children())
      if (!evalBox(C, A, Lo, Hi))
        return false;
    return true;
  case FormulaKind::Or:
    for (const Formula &C : F.children())
      if (evalBox(C, A, Lo, Hi))
        return true;
    return false;
  case FormulaKind::Not:
    return !evalBox(F.children()[0], A, Lo, Hi);
  case FormulaKind::Exists:
  case FormulaKind::Forall: {
    std::vector<std::string> Vars(F.quantified().begin(),
                                  F.quantified().end());
    bool IsExists = F.kind() == FormulaKind::Exists;
    // Enumerate assignments to the quantified variables.
    std::vector<int64_t> Vals(Vars.size(), Lo);
    while (true) {
      for (size_t I = 0; I < Vars.size(); ++I)
        A[Vars[I]] = BigInt(Vals[I]);
      bool B = evalBox(F.body(), A, Lo, Hi);
      if (IsExists && B)
        return true;
      if (!IsExists && !B)
        return false;
      size_t I = 0;
      while (I < Vals.size() && ++Vals[I] > Hi)
        Vals[I++] = Lo;
      if (I == Vals.size())
        break;
    }
    for (const std::string &V : Vars)
      A.erase(V);
    return !IsExists;
  }
  }
  return false;
}

TEST(FeasibleTest, GroundAndSimple) {
  Conjunct T;
  EXPECT_TRUE(feasible(T));
  Conjunct C;
  C.add(Constraint::ge(var("x") - AffineExpr(1)));
  C.add(Constraint::ge(AffineExpr(10) - var("x")));
  EXPECT_TRUE(feasible(C));
  Conjunct Bad;
  Bad.add(Constraint::ge(var("x") - AffineExpr(1)));
  Bad.add(Constraint::ge(-var("x")));
  EXPECT_FALSE(feasible(Bad));
}

TEST(FeasibleTest, IntegerOnlyInfeasibility) {
  // 2x = 1 has rational but no integer solutions.
  Conjunct C;
  C.add(Constraint::eq(var("x") * BigInt(2) - AffineExpr(1)));
  EXPECT_FALSE(feasible(C));
  // Parity conflict: 2|x and 2|x+1.
  Conjunct D;
  D.add(Constraint::stride(BigInt(2), var("x")));
  D.add(Constraint::stride(BigInt(2), var("x") + AffineExpr(1)));
  EXPECT_FALSE(feasible(D));
  // The classic dark-shadow case: 0 <= 3y - x <= 7, 1 <= x - 2y <= 5 has
  // solutions (e.g. x = 6, y = 2 gives 3y-x=0... check x=8,y=3: 1, 2 ok).
  Conjunct E;
  E.add(Constraint::ge(var("y") * BigInt(3) - var("x")));
  E.add(Constraint::ge(AffineExpr(7) - (var("y") * BigInt(3) - var("x"))));
  E.add(Constraint::ge(var("x") - var("y") * BigInt(2) - AffineExpr(1)));
  E.add(Constraint::ge(AffineExpr(5) - (var("x") - var("y") * BigInt(2))));
  EXPECT_TRUE(feasible(E));
}

TEST(FeasibleTest, TightIntegerGap) {
  // 2 <= 3x <= 4 contains the integer x = 1 (3x = 3).
  Conjunct C;
  C.add(Constraint::ge(var("x") * BigInt(3) - AffineExpr(2)));
  C.add(Constraint::ge(AffineExpr(4) - var("x") * BigInt(3)));
  EXPECT_TRUE(feasible(C));
  // 4 <= 3x <= 5 contains no integer (3x would be 4 or 5).
  Conjunct D;
  D.add(Constraint::ge(var("x") * BigInt(3) - AffineExpr(4)));
  D.add(Constraint::ge(AffineExpr(5) - var("x") * BigInt(3)));
  EXPECT_FALSE(feasible(D));
}

TEST(ProjectTest, EvenNumbersExample) {
  // §2.1: ∃y: 1 <= y <= 4 ∧ x = 2y  has solutions x ∈ {2,4,6,8}.
  Conjunct C;
  C.add(Constraint::ge(var("y") - AffineExpr(1)));
  C.add(Constraint::ge(AffineExpr(4) - var("y")));
  C.add(Constraint::eq(var("x") - var("y") * BigInt(2)));
  std::vector<Conjunct> R = projectVars(C, {"y"});
  ASSERT_FALSE(R.empty());
  for (int64_t X = -2; X <= 12; ++X) {
    bool Expected = X >= 2 && X <= 8 && X % 2 == 0;
    EXPECT_EQ(unionContains(R, {{"x", BigInt(X)}}), Expected)
        << "x = " << X;
  }
}

TEST(ProjectTest, PaperProjectionExample) {
  // §2.1: x = 6i + 9j - 7, 1 <= i <= 8, 1 <= j <= 5: all x in [8, 86]
  // with x ≡ 2 (mod 3), except 11 and 83.
  Conjunct C;
  C.add(Constraint::eq(var("x") - var("i") * BigInt(6) - var("j") * BigInt(9) +
                       AffineExpr(7)));
  C.add(Constraint::ge(var("i") - AffineExpr(1)));
  C.add(Constraint::ge(AffineExpr(8) - var("i")));
  C.add(Constraint::ge(var("j") - AffineExpr(1)));
  C.add(Constraint::ge(AffineExpr(5) - var("j")));
  for (ShadowMode Mode : {ShadowMode::Exact, ShadowMode::Disjoint}) {
    std::vector<Conjunct> R = projectVars(C, {"i", "j"}, Mode);
    for (int64_t X = 0; X <= 95; ++X) {
      bool Expected =
          X >= 8 && X <= 86 && X % 3 == 2 && X != 11 && X != 83;
      EXPECT_EQ(unionContains(R, {{"x", BigInt(X)}}), Expected)
          << "x = " << X << " mode " << int(Mode);
    }
  }
}

TEST(ProjectTest, RealAndDarkShadowBracketExact) {
  // ∃y: 0 <= 3y - x <= 7 ∧ 1 <= x - 2y <= 5 (the Figure 1 example).
  Conjunct C;
  AffineExpr T1 = var("y") * BigInt(3) - var("x");
  AffineExpr T2 = var("x") - var("y") * BigInt(2);
  C.add(Constraint::ge(T1));
  C.add(Constraint::ge(AffineExpr(7) - T1));
  C.add(Constraint::ge(T2 - AffineExpr(1)));
  C.add(Constraint::ge(AffineExpr(5) - T2));

  std::vector<Conjunct> Exact = projectVars(C, {"y"}, ShadowMode::Exact);
  std::vector<Conjunct> Disj = projectVars(C, {"y"}, ShadowMode::Disjoint);
  std::vector<Conjunct> Real = projectVars(C, {"y"}, ShadowMode::Real);
  std::vector<Conjunct> Dark = projectVars(C, {"y"}, ShadowMode::Dark);

  EXPECT_TRUE(pairwiseDisjoint(Disj));

  for (int64_t X = -5; X <= 40; ++X) {
    Assignment A{{"x", BigInt(X)}};
    // Ground truth by enumeration over y.
    bool Truth = false;
    for (int64_t Y = -20; Y <= 40 && !Truth; ++Y) {
      int64_t U = 3 * Y - X, V = X - 2 * Y;
      Truth = U >= 0 && U <= 7 && V >= 1 && V <= 5;
    }
    EXPECT_EQ(unionContains(Exact, A), Truth) << "exact x=" << X;
    EXPECT_EQ(unionContains(Disj, A), Truth) << "disjoint x=" << X;
    // Real shadow over-approximates; dark shadow under-approximates.
    if (Truth)
      EXPECT_TRUE(unionContains(Real, A)) << "real x=" << X;
    if (unionContains(Dark, A))
      EXPECT_TRUE(Truth) << "dark x=" << X;
  }
}

TEST(ProjectTest, OneSidedBoundsVacuous) {
  // ∃y: y >= x ∧ y >= 0 is always true.
  Conjunct C;
  C.add(Constraint::ge(var("y") - var("x")));
  C.add(Constraint::ge(var("y")));
  std::vector<Conjunct> R = projectVars(C, {"y"});
  ASSERT_EQ(R.size(), 1u);
  EXPECT_TRUE(R[0].constraints().empty());
}

TEST(ProjectTest, RandomAgainstEnumeration) {
  std::mt19937_64 Rng(2024);
  for (int Trial = 0; Trial < 60; ++Trial) {
    // Random clause over (x, y, z); project (y, z); compare on x.
    Conjunct C;
    auto RandCoef = [&] { return BigInt(int64_t(Rng() % 7) - 3); };
    unsigned NumCons = 2 + Rng() % 4;
    for (unsigned I = 0; I < NumCons; ++I) {
      AffineExpr E = RandCoef() * var("x") + RandCoef() * var("y") +
                     RandCoef() * var("z") + AffineExpr(RandCoef() * 3);
      C.add(Constraint::ge(E));
    }
    // Keep everything bounded so enumeration is finite.
    for (const char *V : {"x", "y", "z"}) {
      C.add(Constraint::ge(var(V) + AffineExpr(6)));
      C.add(Constraint::ge(AffineExpr(6) - var(V)));
    }
    for (ShadowMode Mode : {ShadowMode::Exact, ShadowMode::Disjoint}) {
      std::vector<Conjunct> R = projectVars(C, {"y", "z"}, Mode);
      if (Mode == ShadowMode::Disjoint)
        EXPECT_TRUE(pairwiseDisjoint(R)) << "trial " << Trial;
      for (int64_t X = -7; X <= 7; ++X) {
        bool Truth = false;
        for (int64_t Y = -6; Y <= 6 && !Truth; ++Y)
          for (int64_t Z = -6; Z <= 6 && !Truth; ++Z)
            Truth = C.contains(
                {{"x", BigInt(X)}, {"y", BigInt(Y)}, {"z", BigInt(Z)}});
        EXPECT_EQ(unionContains(R, {{"x", BigInt(X)}}), Truth)
            << "trial " << Trial << " x=" << X << " mode " << int(Mode);
      }
    }
  }
}

TEST(RedundancyTest, SimplePass) {
  Conjunct C;
  C.add(Constraint::ge(var("x") - AffineExpr(1))); // x >= 1
  C.add(Constraint::ge(var("x")));                 // x >= 0 (redundant)
  removeRedundant(C);
  ASSERT_EQ(C.constraints().size(), 1u);
  EXPECT_EQ(C.constraints()[0].expr().constant().toInt64(), -1);
}

TEST(RedundancyTest, AggressivePass) {
  // x >= 5, y >= 5 make x + y >= 8 redundant.
  Conjunct C;
  C.add(Constraint::ge(var("x") - AffineExpr(5)));
  C.add(Constraint::ge(var("y") - AffineExpr(5)));
  C.add(Constraint::ge(var("x") + var("y") - AffineExpr(8)));
  removeRedundant(C, /*Aggressive=*/false);
  EXPECT_EQ(C.constraints().size(), 3u); // Cheap pass cannot see it.
  removeRedundant(C, /*Aggressive=*/true);
  EXPECT_EQ(C.constraints().size(), 2u);
}

TEST(ImpliesTest, Basics) {
  Conjunct P, Q;
  P.add(Constraint::ge(var("x") - AffineExpr(3)));
  Q.add(Constraint::ge(var("x")));
  EXPECT_TRUE(implies(P, Q));
  EXPECT_FALSE(implies(Q, P));
  Conjunct S;
  S.add(Constraint::stride(BigInt(4), var("x")));
  Conjunct T;
  T.add(Constraint::stride(BigInt(2), var("x")));
  EXPECT_TRUE(implies(S, T)); // 4 | x implies 2 | x.
  EXPECT_FALSE(implies(T, S));
}

TEST(GistTest, PaperContract) {
  // gist(x>=1 ∧ x<=10) given (x>=5) should keep only x<=10.
  Conjunct P;
  P.add(Constraint::ge(var("x") - AffineExpr(1)));
  P.add(Constraint::ge(AffineExpr(10) - var("x")));
  Conjunct Q;
  Q.add(Constraint::ge(var("x") - AffineExpr(5)));
  Conjunct G = gist(P, Q);
  ASSERT_EQ(G.constraints().size(), 1u);
  EXPECT_EQ(G.constraints()[0].expr().coeff("x").toInt64(), -1);
}

TEST(GistTest, RandomContract) {
  // (gist P given Q) ∧ Q ≡ P ∧ Q, checked by enumeration.
  std::mt19937_64 Rng(7);
  for (int Trial = 0; Trial < 40; ++Trial) {
    auto RandClause = [&](unsigned N) {
      Conjunct C;
      for (unsigned I = 0; I < N; ++I) {
        AffineExpr E = BigInt(int64_t(Rng() % 5) - 2) * var("x") +
                       BigInt(int64_t(Rng() % 5) - 2) * var("y") +
                       AffineExpr(BigInt(int64_t(Rng() % 9) - 4));
        C.add(Constraint::ge(E));
      }
      return C;
    };
    Conjunct P = RandClause(2 + Rng() % 2), Q = RandClause(1 + Rng() % 2);
    Conjunct G = gist(P, Q);
    for (int64_t X = -5; X <= 5; ++X)
      for (int64_t Y = -5; Y <= 5; ++Y) {
        Assignment A{{"x", BigInt(X)}, {"y", BigInt(Y)}};
        bool Lhs = G.contains(A) && Q.contains(A);
        bool Rhs = P.contains(A) && Q.contains(A);
        EXPECT_EQ(Lhs, Rhs) << "trial " << Trial << " (" << X << "," << Y
                            << ")";
      }
  }
}

TEST(NegateTest, DisjointAndComplete) {
  Conjunct C;
  C.add(Constraint::ge(var("x") - AffineExpr(1)));
  C.add(Constraint::ge(AffineExpr(5) - var("x")));
  C.add(Constraint::stride(BigInt(3), var("x")));
  std::vector<Conjunct> Neg = negateConjunct(C);
  EXPECT_TRUE(pairwiseDisjoint(Neg));
  for (int64_t X = -8; X <= 12; ++X) {
    Assignment A{{"x", BigInt(X)}};
    int Hits = 0;
    for (const Conjunct &N : Neg)
      Hits += N.contains(A);
    EXPECT_EQ(Hits > 0, !C.contains(A)) << "x=" << X;
    EXPECT_LE(Hits, 1) << "x=" << X;
  }
}

TEST(SimplifyTest, SimpleFormulas) {
  std::vector<Conjunct> D = simplify(parseFormulaOrDie("1 <= x <= 3"));
  ASSERT_EQ(D.size(), 1u);
  std::vector<Conjunct> Empty =
      simplify(parseFormulaOrDie("x >= 1 && x <= 0"));
  EXPECT_TRUE(Empty.empty());
  std::vector<Conjunct> T = simplify(Formula::trueFormula());
  ASSERT_EQ(T.size(), 1u);
  EXPECT_TRUE(T[0].constraints().empty());
}

/// Equivalence of simplify output with box-enumeration semantics.
void expectEquivalent(const char *Text, int64_t Lo, int64_t Hi,
                      SimplifyOptions Opts = {}) {
  Formula F = parseFormulaOrDie(Text);
  std::vector<Conjunct> D = simplify(F, Opts);
  if (Opts.Disjoint)
    EXPECT_TRUE(pairwiseDisjoint(D)) << Text;
  VarSet Free = F.freeVars();
  std::vector<std::string> Vars(Free.begin(), Free.end());
  std::vector<int64_t> Vals(Vars.size(), Lo);
  while (true) {
    Assignment A;
    for (size_t I = 0; I < Vars.size(); ++I)
      A[Vars[I]] = BigInt(Vals[I]);
    bool Truth = evalBox(F, A, Lo - 12, Hi + 12);
    EXPECT_EQ(unionContains(D, A), Truth) << Text << " at "
                                          << Conjunct().toString();
    size_t I = 0;
    while (I < Vals.size() && ++Vals[I] > Hi)
      Vals[I++] = Lo;
    if (I == Vals.size() || Vars.empty())
      break;
  }
}

TEST(SimplifyTest, NegationOfStride) {
  expectEquivalent("1 <= x <= 9 && !(2 | x)", -2, 12);
}

TEST(SimplifyTest, ExistsProjection) {
  expectEquivalent("exists(y: 1 <= y <= 4 && x = 2*y)", -2, 12);
  expectEquivalent("exists(y: 0 <= 3*y - x <= 7 && 1 <= x - 2*y <= 5)", -4,
                   32);
}

TEST(SimplifyTest, ForallLowering) {
  // forall(y: 1 <= y <= 3 => x >= y) == x >= 3 over the box; encode the
  // implication as !(bounds) || consequent.
  expectEquivalent("forall(y: !(1 <= y <= 3) || x >= y)", -2, 6);
}

TEST(SimplifyTest, NestedNegation) {
  expectEquivalent("!(1 <= x <= 5 && !(x = 3))", -2, 8);
  expectEquivalent("!(exists(y: x = 2*y && 0 <= y <= 5))", -3, 12);
}

TEST(SimplifyTest, FloorMod) {
  expectEquivalent("x = floor(n / 3) && 0 <= n <= 9", -2, 10);
  expectEquivalent("n mod 2 = 1 && 0 <= n <= 9", -2, 10);
}

TEST(SimplifyTest, DisjointDNFEquivalence) {
  SimplifyOptions Disj;
  Disj.Disjoint = true;
  expectEquivalent("1 <= x <= 5 || 3 <= x <= 8", -2, 12, Disj);
  expectEquivalent("(1 <= x <= 6 && 1 <= y <= 6) || (4 <= x <= 9 && 4 <= y "
                   "<= 9)",
                   -1, 11, Disj);
  expectEquivalent("x = 1 || x = 1 || 1 <= x <= 2", -2, 5, Disj);
}

TEST(SimplifyTest, DisjointCountsSolutionsOnce) {
  // Overlapping union: count via disjoint clauses must equal truth count.
  SimplifyOptions Disj;
  Disj.Disjoint = true;
  Formula F = parseFormulaOrDie(
      "(1 <= x <= 10 && 2 | x) || (1 <= x <= 10 && 3 | x)");
  std::vector<Conjunct> D = simplify(F, Disj);
  EXPECT_TRUE(pairwiseDisjoint(D));
  int Count = 0;
  for (int64_t X = 1; X <= 10; ++X)
    for (const Conjunct &C : D)
      Count += C.contains({{"x", BigInt(X)}});
  EXPECT_EQ(Count, 7); // {2,3,4,6,8,9,10}.
}

TEST(SimplifyTest, ApproximateModes) {
  // Over-approximation contains the exact set; under-approximation is
  // contained in it.
  const char *Text = "exists(y: 0 <= 3*y - x <= 7 && 1 <= x - 2*y <= 5)";
  Formula F = parseFormulaOrDie(Text);
  std::vector<Conjunct> Exact = simplify(F);
  SimplifyOptions RealOpts;
  RealOpts.Mode = ShadowMode::Real;
  SimplifyOptions DarkOpts;
  DarkOpts.Mode = ShadowMode::Dark;
  std::vector<Conjunct> Over = simplify(F, RealOpts);
  std::vector<Conjunct> Under = simplify(F, DarkOpts);
  for (int64_t X = -5; X <= 40; ++X) {
    Assignment A{{"x", BigInt(X)}};
    bool E = unionContains(Exact, A);
    if (E)
      EXPECT_TRUE(unionContains(Over, A)) << X;
    if (unionContains(Under, A))
      EXPECT_TRUE(E) << X;
  }
}

TEST(SimplifyTest, PaperSection26FormulaRuns) {
  const char *Text =
      "1 <= i <= 2*n && 1 <= ip <= 2*n && i = ip && "
      "!exists(i2, j2: 1 <= i2 <= 2*n && 1 <= j2 <= n - 1 && i2 < i && "
      "i2 = ip && 2*j2 = i2) && "
      "!exists(i2, j2: 1 <= i2 <= 2*n && 1 <= j2 <= n - 1 && i2 < i && "
      "i2 = ip && 2*j2 + 1 = i2)";
  Formula F = parseFormulaOrDie(Text);
  std::vector<Conjunct> D = simplify(F);
  EXPECT_FALSE(D.empty());
  // Semantic check on a small grid (witness box must cover 2n).
  for (int64_t N = 1; N <= 4; ++N)
    for (int64_t I = 0; I <= 2 * N + 1; ++I) {
      Assignment A{{"n", BigInt(N)}, {"i", BigInt(I)}, {"ip", BigInt(I)}};
      bool Truth = evalBox(F, A, -1, 2 * N + 2);
      EXPECT_EQ(unionContains(D, A), Truth) << "n=" << N << " i=" << I;
    }
}

TEST(MakeDisjointTest, PreservesUnionRandom) {
  std::mt19937_64 Rng(99);
  for (int Trial = 0; Trial < 25; ++Trial) {
    std::vector<Conjunct> Clauses;
    unsigned NumClauses = 2 + Rng() % 3;
    for (unsigned I = 0; I < NumClauses; ++I) {
      Conjunct C;
      int64_t Lo = int64_t(Rng() % 8), Hi = Lo + int64_t(Rng() % 8);
      int64_t Lo2 = int64_t(Rng() % 8), Hi2 = Lo2 + int64_t(Rng() % 8);
      C.add(Constraint::ge(var("x") - AffineExpr(Lo)));
      C.add(Constraint::ge(AffineExpr(Hi) - var("x")));
      C.add(Constraint::ge(var("y") - AffineExpr(Lo2)));
      C.add(Constraint::ge(AffineExpr(Hi2) - var("y")));
      if (Rng() % 2)
        C.add(Constraint::stride(BigInt(2 + Rng() % 3), var("x")));
      Clauses.push_back(std::move(C));
    }
    std::vector<Conjunct> D = makeDisjoint(Clauses);
    EXPECT_TRUE(pairwiseDisjoint(D)) << "trial " << Trial;
    for (int64_t X = -1; X <= 16; ++X)
      for (int64_t Y = -1; Y <= 16; ++Y) {
        Assignment A{{"x", BigInt(X)}, {"y", BigInt(Y)}};
        bool Before = false;
        for (const Conjunct &C : Clauses)
          Before = Before || C.contains(A);
        int Hits = 0;
        for (const Conjunct &C : D)
          Hits += C.contains(A);
        EXPECT_EQ(Hits > 0, Before) << "trial " << Trial;
        EXPECT_LE(Hits, 1) << "trial " << Trial;
      }
  }
}

TEST(ContainsPointTest, WithWildcards) {
  // x even, expressed with a wildcard equality.
  Conjunct C;
  std::string W = freshWildcard();
  C.addWildcard(W);
  AffineExpr E = var("x") - BigInt(2) * AffineExpr::variable(W);
  C.add(Constraint::eq(std::move(E)));
  EXPECT_TRUE(containsPoint(C, {{"x", BigInt(4)}}));
  EXPECT_FALSE(containsPoint(C, {{"x", BigInt(5)}}));
}

} // namespace
