//===- tests/SummationEdgeTest.cpp - Summation engine corner cases -------===//

#include "counting/Summation.h"

#include "presburger/Parser.h"

#include <gtest/gtest.h>

using namespace omega;

namespace {

QuasiPolynomial qvar(const char *N) { return QuasiPolynomial::variable(N); }
Rational rat(long long N) { return Rational(BigInt(N)); }

TEST(SummationEdgeTest, EqualityPinnedVariableIsBounded) {
  // i = n: exactly one solution for every n — not unbounded.
  PiecewiseValue V = countSolutions(parseFormulaOrDie("i = n"), {"i"});
  ASSERT_FALSE(V.isUnbounded());
  for (int64_t N : {-5, 0, 17})
    EXPECT_EQ(V.evaluate({{"n", BigInt(N)}}), rat(1)) << N;
}

TEST(SummationEdgeTest, StridePinnedStaysUnbounded) {
  // 2 | i alone has infinitely many solutions.
  EXPECT_TRUE(countSolutions(parseFormulaOrDie("2 | i"), {"i"})
                  .isUnbounded());
}

TEST(SummationEdgeTest, EmptyVarSetGivesGuardedConstant) {
  // No counted variables: the "sum" is x guarded by the formula (§1's
  // nullary summation).
  PiecewiseValue V = sumOverFormula(parseFormulaOrDie("n >= 1"), {},
                                    QuasiPolynomial(rat(7)));
  EXPECT_EQ(V.evaluate({{"n", BigInt(3)}}), rat(7));
  EXPECT_EQ(V.evaluate({{"n", BigInt(0)}}), rat(0));
}

TEST(SummationEdgeTest, FalseFormulaCountsZero) {
  PiecewiseValue V = countSolutions(Formula::falseFormula(), {"i"});
  EXPECT_FALSE(V.isUnbounded());
  EXPECT_EQ(V.evaluate({}), rat(0));
  EXPECT_TRUE(V.pieces().empty());
}

TEST(SummationEdgeTest, ZeroSummandIsZero) {
  PiecewiseValue V = sumOverFormula(parseFormulaOrDie("1 <= i <= n"), {"i"},
                                    QuasiPolynomial());
  EXPECT_EQ(V.evaluate({{"n", BigInt(9)}}), rat(0));
}

TEST(SummationEdgeTest, HighDegreeSummand) {
  // Σ_{i=1}^{n} i^10 — the top of the paper's hard-coded table; checked
  // against direct accumulation.
  PiecewiseValue V = sumOverFormula(parseFormulaOrDie("1 <= i <= n"), {"i"},
                                    QuasiPolynomial::pow(qvar("i"), 10));
  for (int64_t N : {0, 1, 7, 20}) {
    BigInt Expected(0);
    for (int64_t I = 1; I <= N; ++I)
      Expected += BigInt::pow(BigInt(I), 10);
    EXPECT_EQ(V.evaluate({{"n", BigInt(N)}}), Rational(Expected)) << N;
  }
}

TEST(SummationEdgeTest, EvaluationAtAstronomicalN) {
  // The symbolic answer is exact at n = 10^30 — far beyond enumeration
  // and machine integers.
  PiecewiseValue V =
      countSolutions(parseFormulaOrDie("1 <= i <= j <= n"), {"i", "j"});
  BigInt N = BigInt::pow(BigInt(10), 30);
  BigInt Expected = N * (N + BigInt(1)) / BigInt(2);
  EXPECT_EQ(V.evaluateInt({{"n", N}}), Expected);
}

TEST(SummationEdgeTest, FourNestedVariables) {
  // Σ over 1 <= i <= j <= k <= l <= n: C(n+3, 4).
  Formula F = parseFormulaOrDie("1 <= i <= j && j <= k && k <= l <= n");
  PiecewiseValue V = countSolutions(F, {"i", "j", "k", "l"});
  for (int64_t N = 0; N <= 9; ++N) {
    int64_t Expected = N * (N + 1) * (N + 2) * (N + 3) / 24;
    EXPECT_EQ(V.evaluate({{"n", BigInt(N)}}), rat(Expected)) << N;
  }
}

TEST(SummationEdgeTest, MultipleSymbolsInGuards) {
  // Box [a, b] x [c, d]: count (b-a+1)(d-c+1) when nonempty.
  Formula F = parseFormulaOrDie("a <= i <= b && c <= j <= d");
  PiecewiseValue V = countSolutions(F, {"i", "j"});
  for (int64_t A : {-2, 0, 3})
    for (int64_t B : {-3, 1, 4})
      for (int64_t C : {0, 2})
        for (int64_t D : {1, 5}) {
          int64_t Expected = std::max<int64_t>(0, B - A + 1) *
                             std::max<int64_t>(0, D - C + 1);
          Assignment S{{"a", BigInt(A)},
                       {"b", BigInt(B)},
                       {"c", BigInt(C)},
                       {"d", BigInt(D)}};
          EXPECT_EQ(V.evaluate(S), rat(Expected))
              << A << " " << B << " " << C << " " << D;
        }
}

TEST(SummationEdgeTest, NegativeSymbolicRange) {
  // Σ_{i=-n}^{-1} i = -n(n+1)/2 for n >= 1 (negative summands).
  Formula F = parseFormulaOrDie("0 - n <= i && i <= -1");
  PiecewiseValue V = sumOverFormula(F, {"i"}, qvar("i"));
  for (int64_t N = 0; N <= 9; ++N)
    EXPECT_EQ(V.evaluate({{"n", BigInt(N)}}), rat(-(N * (N + 1) / 2)))
        << N;
}

TEST(SummationEdgeTest, AblationsProduceSameValues) {
  Formula F = parseFormulaOrDie(
      "1 <= a <= n && a <= b <= n && b <= c <= n && a + c <= n + 2");
  SumOptions Variants[4];
  Variants[1].EliminateRedundant = false;
  Variants[2].FreeVariableOrder = false;
  Variants[3].EliminateRedundant = false;
  Variants[3].FreeVariableOrder = false;
  PiecewiseValue Ref = countSolutions(F, {"a", "b", "c"}, Variants[0]);
  for (int K = 1; K < 4; ++K) {
    PiecewiseValue V = countSolutions(F, {"a", "b", "c"}, Variants[K]);
    for (int64_t N = 0; N <= 8; ++N)
      EXPECT_EQ(V.evaluate({{"n", BigInt(N)}}),
                Ref.evaluate({{"n", BigInt(N)}}))
          << "variant " << K << " n=" << N;
  }
}

TEST(SummationEdgeTest, SumOverConjunctDirect) {
  // The clause-level entry point, with a stride.
  Conjunct C;
  C.add(Constraint::ge(AffineExpr::variable("i") - AffineExpr(1)));
  C.add(Constraint::ge(AffineExpr::variable("n") -
                       AffineExpr::variable("i")));
  C.add(Constraint::stride(BigInt(3), AffineExpr::variable("i")));
  PiecewiseValue V = sumOverConjunct(C, {"i"}, qvar("i"));
  for (int64_t N = 0; N <= 12; ++N) {
    int64_t Expected = 0;
    for (int64_t I = 3; I <= N; I += 3)
      Expected += I;
    EXPECT_EQ(V.evaluate({{"n", BigInt(N)}}), rat(Expected)) << N;
  }
}

TEST(SummationEdgeTest, MixedSignSummandExactStrategies) {
  // Σ (i - 3) over 1..n: negative then positive contributions.
  Formula F = parseFormulaOrDie("1 <= i <= n");
  QuasiPolynomial X = qvar("i") - QuasiPolynomial(rat(3));
  PiecewiseValue V = sumOverFormula(F, {"i"}, X);
  for (int64_t N = 0; N <= 9; ++N) {
    int64_t Expected = 0;
    for (int64_t I = 1; I <= N; ++I)
      Expected += I - 3;
    EXPECT_EQ(V.evaluate({{"n", BigInt(N)}}), rat(Expected)) << N;
  }
}

} // namespace
