//===- tests/CountingTest.cpp - Symbolic summation vs enumeration --------===//

#include "counting/Summation.h"

#include "presburger/Parser.h"

#include <gtest/gtest.h>

#include <random>

using namespace omega;

namespace {

QuasiPolynomial qvar(const char *N) { return QuasiPolynomial::variable(N); }
Rational rat(long long N, long long D = 1) {
  return Rational(BigInt(N), BigInt(D));
}
QuasiPolynomial one() { return QuasiPolynomial(rat(1)); }

/// Brute-force oracle: sums X over all assignments of Vars in [Lo, Hi]^k
/// satisfying the (quantifier-bearing) formula F at the given symbol
/// values; quantified variables are searched in [WLo, WHi].
Rational enumerate(const Formula &F, const std::vector<std::string> &Vars,
                   Assignment Syms, const QuasiPolynomial &X, int64_t Lo,
                   int64_t Hi, int64_t WLo, int64_t WHi) {
  struct Rec {
    int64_t WLo, WHi;
    bool eval(const Formula &F, Assignment &A) {
      switch (F.kind()) {
      case FormulaKind::True:
        return true;
      case FormulaKind::False:
        return false;
      case FormulaKind::Atom:
        return F.constraint().holds(A);
      case FormulaKind::And:
        for (const Formula &C : F.children())
          if (!eval(C, A))
            return false;
        return true;
      case FormulaKind::Or:
        for (const Formula &C : F.children())
          if (eval(C, A))
            return true;
        return false;
      case FormulaKind::Not:
        return !eval(F.children()[0], A);
      case FormulaKind::Exists:
      case FormulaKind::Forall: {
        std::vector<std::string> Qs(F.quantified().begin(),
                                    F.quantified().end());
        bool IsEx = F.kind() == FormulaKind::Exists;
        std::vector<int64_t> Vals(Qs.size(), WLo);
        bool Result = !IsEx;
        while (true) {
          for (size_t I = 0; I < Qs.size(); ++I)
            A[Qs[I]] = BigInt(Vals[I]);
          bool B = eval(F.body(), A);
          if (IsEx && B) {
            Result = true;
            break;
          }
          if (!IsEx && !B) {
            Result = false;
            break;
          }
          size_t I = 0;
          while (I < Vals.size() && ++Vals[I] > WHi)
            Vals[I++] = WLo;
          if (I == Vals.size())
            break;
        }
        for (const std::string &Q : Qs)
          A.erase(Q);
        return Result;
      }
      }
      return false;
    }
  } R{WLo, WHi};

  Rational Sum(0);
  std::vector<int64_t> Vals(Vars.size(), Lo);
  while (true) {
    Assignment A = Syms;
    for (size_t I = 0; I < Vars.size(); ++I)
      A[Vars[I]] = BigInt(Vals[I]);
    if (R.eval(F, A))
      Sum += X.evaluate(A);
    size_t I = 0;
    while (I < Vals.size() && ++Vals[I] > Hi)
      Vals[I++] = Lo;
    if (I == Vals.size() || Vars.empty())
      break;
  }
  return Sum;
}

TEST(CountingTest, IntroTableConstantRange) {
  // (Σ i : 1 <= i <= 10 : 1) = 10.
  PiecewiseValue V =
      countSolutions(parseFormulaOrDie("1 <= i <= 10"), {"i"});
  EXPECT_EQ(V.evaluate({}), rat(10));
}

TEST(CountingTest, IntroTableSymbolicCount) {
  // (Σ i : 1 <= i <= n : 1) = (n if n >= 1).
  PiecewiseValue V = countSolutions(parseFormulaOrDie("1 <= i <= n"), {"i"});
  for (int64_t N = -3; N <= 10; ++N)
    EXPECT_EQ(V.evaluate({{"n", BigInt(N)}}), rat(std::max<int64_t>(0, N)))
        << N;
}

TEST(CountingTest, IntroTableSum) {
  // (Σ i : 1 <= i <= n : i) = n(n+1)/2 guarded by n >= 1.
  PiecewiseValue V = sumOverFormula(parseFormulaOrDie("1 <= i <= n"), {"i"},
                                    qvar("i"));
  for (int64_t N = -3; N <= 10; ++N) {
    int64_t Expected = N >= 1 ? N * (N + 1) / 2 : 0;
    EXPECT_EQ(V.evaluate({{"n", BigInt(N)}}), rat(Expected)) << N;
  }
}

TEST(CountingTest, IntroTableSquare) {
  // (Σ i,j : 1 <= i,j <= n : 1) = n².
  PiecewiseValue V =
      countSolutions(parseFormulaOrDie("1 <= i,j <= n"), {"i", "j"});
  for (int64_t N = 0; N <= 8; ++N)
    EXPECT_EQ(V.evaluate({{"n", BigInt(N)}}), rat(N * N)) << N;
}

TEST(CountingTest, IntroTableTriangle) {
  // (Σ i,j : 1 <= i < j <= n : 1) = n(n-1)/2 for n >= 2.
  PiecewiseValue V =
      countSolutions(parseFormulaOrDie("1 <= i && i < j && j <= n"),
                     {"i", "j"});
  for (int64_t N = 0; N <= 9; ++N)
    EXPECT_EQ(V.evaluate({{"n", BigInt(N)}}), rat(N * (N - 1) / 2)) << N;
}

TEST(CountingTest, MathematicaPitfall) {
  // Σ_{i=1}^n Σ_{j=i}^m 1: Mathematica's n(2m-n+1)/2 is wrong for m < n;
  // ours must be right on both regions.
  Formula F = parseFormulaOrDie("1 <= i <= n && i <= j <= m");
  PiecewiseValue V = countSolutions(F, {"i", "j"});
  for (int64_t N = 0; N <= 7; ++N)
    for (int64_t M = 0; M <= 7; ++M) {
      int64_t Expected = 0;
      for (int64_t I = 1; I <= N; ++I)
        Expected += std::max<int64_t>(0, M - I + 1);
      EXPECT_EQ(V.evaluate({{"n", BigInt(N)}, {"m", BigInt(M)}}),
                rat(Expected))
          << N << "," << M;
    }
}

TEST(CountingTest, PolynomialSummand) {
  // Σ_{i=1}^{n} i² and Σ_{1<=i<=j<=n} i*j against enumeration.
  Formula F1 = parseFormulaOrDie("1 <= i <= n");
  PiecewiseValue V1 = sumOverFormula(F1, {"i"}, qvar("i") * qvar("i"));
  Formula F2 = parseFormulaOrDie("1 <= i <= j <= n");
  PiecewiseValue V2 = sumOverFormula(F2, {"i", "j"}, qvar("i") * qvar("j"));
  for (int64_t N = 0; N <= 8; ++N) {
    Assignment S{{"n", BigInt(N)}};
    EXPECT_EQ(V1.evaluate(S),
              enumerate(F1, {"i"}, S, qvar("i") * qvar("i"), -1, 10, 0, 0))
        << N;
    EXPECT_EQ(V2.evaluate(S), enumerate(F2, {"i", "j"}, S,
                                        qvar("i") * qvar("j"), -1, 10, 0, 0))
        << N;
  }
}

TEST(CountingTest, Example6PaperResult) {
  // §6 Example 6: (Σ i,j : 1 <= i, j <= n ∧ 2i <= 3j : 1)
  //             = (3n² + 2n - n mod 2) / 4 for n >= 1.
  Formula F = parseFormulaOrDie("1 <= i && 1 <= j && j <= n && 2*i <= 3*j");
  PiecewiseValue V = countSolutions(F, {"i", "j"});
  for (int64_t N = 0; N <= 12; ++N) {
    int64_t Expected = (3 * N * N + 2 * N - (N % 2)) / 4;
    if (N < 1)
      Expected = 0;
    EXPECT_EQ(V.evaluate({{"n", BigInt(N)}}), rat(Expected)) << "n=" << N;
  }
}

TEST(CountingTest, StrideCounting) {
  // (Σ x : 1 <= x <= n ∧ 2 | x : 1) = floor(n/2).
  Formula F = parseFormulaOrDie("1 <= x <= n && 2 | x");
  for (BoundStrategy Strat :
       {BoundStrategy::Splinter, BoundStrategy::SymbolicMod}) {
    SumOptions Opts;
    Opts.Strategy = Strat;
    PiecewiseValue V = countSolutions(F, {"x"}, Opts);
    for (int64_t N = -1; N <= 12; ++N)
      EXPECT_EQ(V.evaluate({{"n", BigInt(N)}}),
                rat(std::max<int64_t>(0, N / 2)))
          << "n=" << N << " strat=" << int(Strat);
  }
}

TEST(CountingTest, ProjectedCount) {
  // §6 Example 4 shape: x = 6i + 9j - 7 with loop bounds has 25 distinct
  // values.
  Formula F = parseFormulaOrDie(
      "exists(i, j: 1 <= i <= 8 && 1 <= j <= 5 && x = 6*i + 9*j - 7)");
  PiecewiseValue V = countSolutions(F, {"x"});
  EXPECT_EQ(V.evaluate({}), rat(25));
}

TEST(CountingTest, RationalBoundStrategies) {
  // Σ_{i=1}^{floor(n/3)} i (§4.2.1's running example).
  Formula F = parseFormulaOrDie("1 <= 3*i && 3*i <= n");
  auto Truth = [](int64_t N) {
    int64_t U = N >= 0 ? N / 3 : 0;
    return rat(U * (U + 1) / 2);
  };
  for (BoundStrategy Strat :
       {BoundStrategy::Splinter, BoundStrategy::SymbolicMod}) {
    SumOptions Opts;
    Opts.Strategy = Strat;
    PiecewiseValue V = sumOverFormula(F, {"i"}, qvar("i"), Opts);
    for (int64_t N = 0; N <= 15; ++N)
      EXPECT_EQ(V.evaluate({{"n", BigInt(N)}}), Truth(N))
          << "n=" << N << " strat=" << int(Strat);
  }
  // Bounds bracket the truth.
  SumOptions UpOpts, LoOpts;
  UpOpts.Strategy = BoundStrategy::UpperBound;
  LoOpts.Strategy = BoundStrategy::LowerBound;
  PiecewiseValue Up = sumOverFormula(F, {"i"}, qvar("i"), UpOpts);
  PiecewiseValue Lo = sumOverFormula(F, {"i"}, qvar("i"), LoOpts);
  for (int64_t N = 0; N <= 15; ++N) {
    EXPECT_GE(Up.evaluate({{"n", BigInt(N)}}), Truth(N)) << N;
    EXPECT_LE(Lo.evaluate({{"n", BigInt(N)}}), Truth(N)) << N;
  }
  // The paper's §4.2.1 closed forms at n >= 3:
  // lower (n-2)(n+1)/18, upper n(n+3)/18.
  for (int64_t N = 3; N <= 15; ++N) {
    EXPECT_EQ(Up.evaluate({{"n", BigInt(N)}}), rat(N * (N + 3), 18)) << N;
    EXPECT_EQ(Lo.evaluate({{"n", BigInt(N)}}), rat((N - 2) * (N + 1), 18))
        << N;
  }
}

TEST(CountingTest, Example1TawbiLoop) {
  // §6 Example 1: Σ_{i=1}^n Σ_{j=1}^i Σ_{k=j}^m 1.
  Formula F =
      parseFormulaOrDie("1 <= i <= n && 1 <= j <= i && j <= k <= m");
  PiecewiseValue V = countSolutions(F, {"i", "j", "k"});
  for (int64_t N = 0; N <= 6; ++N)
    for (int64_t M = 0; M <= 6; ++M) {
      int64_t Expected = 0;
      for (int64_t I = 1; I <= N; ++I)
        for (int64_t J = 1; J <= I; ++J)
          Expected += std::max<int64_t>(0, M - J + 1);
      EXPECT_EQ(V.evaluate({{"n", BigInt(N)}, {"m", BigInt(M)}}),
                rat(Expected))
          << N << "," << M;
    }
}

TEST(CountingTest, Example2HaghighatLoop) {
  // §6 Example 2: Σ_{i=1}^n Σ_{j=3}^i Σ_{k=j}^5 1 = 6n - 16 for n >= 5.
  Formula F =
      parseFormulaOrDie("1 <= i <= n && 3 <= j <= i && j <= k <= 5");
  PiecewiseValue V = countSolutions(F, {"i", "j", "k"});
  for (int64_t N = 0; N <= 12; ++N) {
    int64_t Expected = 0;
    for (int64_t I = 1; I <= N; ++I)
      for (int64_t J = 3; J <= I; ++J)
        Expected += std::max<int64_t>(0, 5 - J + 1);
    EXPECT_EQ(V.evaluate({{"n", BigInt(N)}}), rat(Expected)) << N;
    if (N >= 5)
      EXPECT_EQ(Expected, 6 * N - 16) << N;
  }
}

TEST(CountingTest, Example3MinLoop) {
  // §6 Example 3: (Σ i,j : 1 <= i <= 2n ∧ 1 <= j <= i ∧ i + j <= 2n) = n².
  Formula F = parseFormulaOrDie(
      "1 <= i <= 2*n && 1 <= j <= i && i + j <= 2*n");
  PiecewiseValue V = countSolutions(F, {"i", "j"});
  for (int64_t N = 0; N <= 8; ++N)
    EXPECT_EQ(V.evaluate({{"n", BigInt(N)}}), rat(N * N)) << N;
}

TEST(CountingTest, UnboundedDetection) {
  EXPECT_TRUE(countSolutions(parseFormulaOrDie("x >= 1"), {"x"})
                  .isUnbounded());
  EXPECT_TRUE(countSolutions(parseFormulaOrDie("1 <= y <= 5"), {"x", "y"})
                  .isUnbounded());
  EXPECT_FALSE(countSolutions(parseFormulaOrDie("1 <= x <= 5"), {"x"})
                   .isUnbounded());
}

TEST(CountingTest, DisjunctionCountedOnce) {
  // Overlapping clauses must not double-count (§4.5.1).
  Formula F = parseFormulaOrDie(
      "(1 <= x <= 10 && 2 | x) || (1 <= x <= 10 && 3 | x)");
  PiecewiseValue V = countSolutions(F, {"x"});
  EXPECT_EQ(V.evaluate({}), rat(7)); // {2,3,4,6,8,9,10}.
}

TEST(CountingTest, NegationCount) {
  Formula F = parseFormulaOrDie("1 <= x <= 20 && !(3 | x) && !(x = 7)");
  PiecewiseValue V = countSolutions(F, {"x"});
  // 20 - 6 (multiples of 3) - 1 (x=7, not a multiple of 3) = 13.
  EXPECT_EQ(V.evaluate({}), rat(13));
}

TEST(CountingTest, SumOverStriddenVar) {
  // Σ_{x even, 2 <= x <= n} x = 2 + 4 + ... against enumeration.
  Formula F = parseFormulaOrDie("2 <= x <= n && 2 | x");
  PiecewiseValue V = sumOverFormula(F, {"x"}, qvar("x"));
  for (int64_t N = 0; N <= 13; ++N) {
    int64_t Expected = 0;
    for (int64_t X = 2; X <= N; X += 2)
      Expected += X;
    EXPECT_EQ(V.evaluate({{"n", BigInt(N)}}), rat(Expected)) << N;
  }
}

TEST(CountingTest, EqualityCoupling) {
  // Count (i, j) with i = j and bounds: diagonal.
  Formula F = parseFormulaOrDie("1 <= i <= n && 1 <= j <= n && i = j");
  PiecewiseValue V = countSolutions(F, {"i", "j"});
  for (int64_t N = 0; N <= 8; ++N)
    EXPECT_EQ(V.evaluate({{"n", BigInt(N)}}), rat(std::max<int64_t>(0, N)))
        << N;
}

TEST(CountingTest, HPFBlockCyclicMapping) {
  // §3.3: t = l + 4p + 32c, 0 <= l <= 3, 0 <= p <= 7, 0 <= t <= 1023:
  // each processor owns 128 template cells.
  Formula F = parseFormulaOrDie("exists(l, c: t = l + 4*p + 32*c && "
                                "0 <= l <= 3 && 0 <= c && 0 <= t <= 1023)");
  PiecewiseValue V = countSolutions(F, {"t"});
  for (int64_t P = 0; P <= 7; ++P)
    EXPECT_EQ(V.evaluate({{"p", BigInt(P)}}), rat(128)) << "p=" << P;
}

TEST(CountingTest, RandomClausesAgainstEnumeration) {
  std::mt19937_64 Rng(4242);
  int Done = 0;
  for (int Trial = 0; Trial < 200 && Done < 60; ++Trial) {
    // Random conjunct over counted (x, y) and symbol n.
    Conjunct C;
    auto RC = [&] { return BigInt(int64_t(Rng() % 7) - 3); };
    unsigned NumCons = 2 + Rng() % 3;
    for (unsigned I = 0; I < NumCons; ++I) {
      AffineExpr E = RC() * AffineExpr::variable("x") +
                     RC() * AffineExpr::variable("y") +
                     RC() * AffineExpr::variable("n") + AffineExpr(RC());
      C.add(Constraint::ge(E));
    }
    // Bound the counted box so the count is finite.
    for (const char *V : {"x", "y"}) {
      C.add(Constraint::ge(AffineExpr::variable(V) + AffineExpr(5)));
      C.add(Constraint::ge(AffineExpr(5) - AffineExpr::variable(V)));
    }
    if (Rng() % 2)
      C.add(Constraint::stride(BigInt(2 + Rng() % 3),
                               AffineExpr::variable("x") +
                                   AffineExpr::variable("n")));
    Formula F = Formula::fromConjunct(C);
    PiecewiseValue V = countSolutions(F, {"x", "y"});
    if (V.isUnbounded())
      continue;
    ++Done;
    for (int64_t N = -3; N <= 3; ++N) {
      Assignment S{{"n", BigInt(N)}};
      Rational Truth = enumerate(F, {"x", "y"}, S, one(), -5, 5, 0, 0);
      EXPECT_EQ(V.evaluate(S), Truth) << "trial " << Trial << " n=" << N;
    }
  }
  EXPECT_GE(Done, 30);
}

TEST(CountingTest, RandomPolynomialSums) {
  std::mt19937_64 Rng(777);
  for (int Trial = 0; Trial < 30; ++Trial) {
    int64_t A = 1 + int64_t(Rng() % 3);
    int64_t B = 1 + int64_t(Rng() % 3);
    std::string Text = "1 <= " + std::to_string(A) + "*i && " +
                       std::to_string(B) + "*i <= n";
    Formula F = parseFormulaOrDie(Text);
    unsigned Deg = Rng() % 4;
    QuasiPolynomial X = QuasiPolynomial::pow(qvar("i"), Deg);
    PiecewiseValue V = sumOverFormula(F, {"i"}, X);
    for (int64_t N = 0; N <= 14; ++N) {
      Assignment S{{"n", BigInt(N)}};
      Rational Truth = enumerate(F, {"i"}, S, X, -1, 20, 0, 0);
      EXPECT_EQ(V.evaluate(S), Truth)
          << "trial " << Trial << " a=" << A << " b=" << B << " d=" << Deg
          << " n=" << N;
    }
  }
}

} // namespace
