//===- tests/CodeGenTest.cpp - Polyhedron-scanning loop generation -------===//

#include "apps/CodeGen.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <set>

using namespace omega;

namespace {

AffineExpr var(const char *N) { return AffineExpr::variable(N); }

/// Visited points as (sorted) tuples over \p Order.
std::set<std::vector<int64_t>> visited(const GeneratedScan &Scan,
                                       const std::vector<std::string> &Order,
                                       const Assignment &Params) {
  std::set<std::vector<int64_t>> Out;
  for (const Assignment &P : runScan(Scan, Params)) {
    std::vector<int64_t> T;
    for (const std::string &V : Order)
      T.push_back(P.at(V).toInt64());
    Out.insert(std::move(T));
  }
  return Out;
}

/// Ground truth by box enumeration of the clause.
std::set<std::vector<int64_t>>
enumerated(const Conjunct &C, const std::vector<std::string> &Order,
           const Assignment &Params, int64_t Lo, int64_t Hi) {
  std::set<std::vector<int64_t>> Out;
  std::vector<int64_t> Vals(Order.size(), Lo);
  while (true) {
    Assignment A = Params;
    for (size_t I = 0; I < Order.size(); ++I)
      A[Order[I]] = BigInt(Vals[I]);
    if (C.contains(A))
      Out.insert(Vals);
    size_t I = 0;
    while (I < Vals.size() && ++Vals[I] > Hi)
      Vals[I++] = Lo;
    if (I == Vals.size())
      break;
  }
  return Out;
}

TEST(CodeGenTest, TriangleExactBounds) {
  // 1 <= i <= j <= n: unit bounds, exact scan with no guard.
  Conjunct C;
  C.add(Constraint::ge(var("i") - AffineExpr(1)));
  C.add(Constraint::ge(var("j") - var("i")));
  C.add(Constraint::ge(var("n") - var("j")));
  std::vector<std::string> Order{"i", "j"};
  GeneratedScan Scan = generateScan(C, Order);
  EXPECT_TRUE(Scan.Exact);
  EXPECT_TRUE(Scan.Guard.empty());
  for (int64_t N : {0, 1, 5}) {
    Assignment P{{"n", BigInt(N)}};
    EXPECT_EQ(visited(Scan, Order, P), enumerated(C, Order, P, -2, 8))
        << "n=" << N;
  }
}

TEST(CodeGenTest, EmittedTextShape) {
  Conjunct C;
  C.add(Constraint::ge(var("i") - AffineExpr(1)));
  C.add(Constraint::ge(var("n") - var("i")));
  C.add(Constraint::ge(var("m") - var("i")));
  GeneratedScan Scan = generateScan(C, {"i"});
  std::string Text = Scan.emit();
  EXPECT_NE(Text.find("for (i = "), std::string::npos);
  EXPECT_NE(Text.find("min("), std::string::npos);
  EXPECT_NE(Text.find("visit(i);"), std::string::npos);
}

TEST(CodeGenTest, RationalBoundsGetGuard) {
  // 1 <= 3i <= n needs ceil/floor bounds; scan stays correct.
  Conjunct C;
  C.add(Constraint::ge(BigInt(3) * var("i") - AffineExpr(1)));
  C.add(Constraint::ge(var("n") - BigInt(3) * var("i")));
  std::vector<std::string> Order{"i"};
  GeneratedScan Scan = generateScan(C, Order);
  for (int64_t N : {0, 2, 3, 10}) {
    Assignment P{{"n", BigInt(N)}};
    EXPECT_EQ(visited(Scan, Order, P), enumerated(C, Order, P, -3, 6))
        << "n=" << N;
  }
  // Normalization tightens the constant lower bound 3i >= 1 to the unit
  // form i >= 1; the symbolic upper bound keeps its divisor.
  std::string Text = Scan.emit();
  EXPECT_NE(Text.find("floord("), std::string::npos);
}

TEST(CodeGenTest, StrideClauseGuarded) {
  // Even numbers in [0, n]: stride makes the shadow inexact; the guard
  // filters the odd points.
  Conjunct C;
  C.add(Constraint::ge(var("i")));
  C.add(Constraint::ge(var("n") - var("i")));
  C.add(Constraint::stride(BigInt(2), var("i")));
  std::vector<std::string> Order{"i"};
  GeneratedScan Scan = generateScan(C, Order);
  EXPECT_FALSE(Scan.Exact);
  EXPECT_FALSE(Scan.Guard.empty());
  for (int64_t N : {0, 1, 7}) {
    Assignment P{{"n", BigInt(N)}};
    EXPECT_EQ(visited(Scan, Order, P), enumerated(C, Order, P, -2, 9))
        << "n=" << N;
  }
}

TEST(CodeGenTest, EqualityPinsLevel) {
  // j = 2i inside a box: the j loop collapses to a single iteration.
  Conjunct C;
  C.add(Constraint::ge(var("i") - AffineExpr(1)));
  C.add(Constraint::ge(AffineExpr(4) - var("i")));
  C.add(Constraint::eq(var("j") - BigInt(2) * var("i")));
  std::vector<std::string> Order{"i", "j"};
  GeneratedScan Scan = generateScan(C, Order);
  Assignment P;
  EXPECT_EQ(visited(Scan, Order, P), enumerated(C, Order, P, -1, 10));
}

TEST(CodeGenTest, CoupledBoundsBothOrders) {
  // i + j <= n diagonal region, generated in both orders.
  Conjunct C;
  C.add(Constraint::ge(var("i") - AffineExpr(1)));
  C.add(Constraint::ge(var("j") - AffineExpr(1)));
  C.add(Constraint::ge(var("n") - var("i") - var("j")));
  for (std::vector<std::string> Order :
       {std::vector<std::string>{"i", "j"},
        std::vector<std::string>{"j", "i"}}) {
    GeneratedScan Scan = generateScan(C, Order);
    Assignment P{{"n", BigInt(6)}};
    EXPECT_EQ(visited(Scan, Order, P), enumerated(C, Order, P, -1, 8));
  }
}

TEST(CodeGenTest, RandomClausesScanExactly) {
  std::mt19937_64 Rng(606);
  int Done = 0;
  for (int Trial = 0; Trial < 80 && Done < 25; ++Trial) {
    Conjunct C;
    auto RC = [&] { return BigInt(int64_t(Rng() % 7) - 3); };
    unsigned NumCons = 1 + Rng() % 3;
    for (unsigned I = 0; I < NumCons; ++I)
      C.add(Constraint::ge(RC() * var("i") + RC() * var("j") +
                           AffineExpr(RC())));
    for (const char *V : {"i", "j"}) {
      C.add(Constraint::ge(var(V) + AffineExpr(4)));
      C.add(Constraint::ge(AffineExpr(4) - var(V)));
    }
    if (Rng() % 3 == 0)
      C.add(Constraint::stride(BigInt(2 + Rng() % 2), var("i") + var("j")));
    if (!feasible(C))
      continue;
    ++Done;
    std::vector<std::string> Order{"i", "j"};
    GeneratedScan Scan = generateScan(C, Order);
    Assignment P;
    EXPECT_EQ(visited(Scan, Order, P), enumerated(C, Order, P, -5, 5))
        << "trial " << Trial;
  }
  EXPECT_GE(Done, 15);
}

} // namespace
