//===- tests/PropertySweepTest.cpp - Parameterized property sweeps -------===//
//
// TEST_P sweeps over the engine's main knobs: shadow modes, bound
// strategies, coefficient ranges, moduli, and dimensions — every sweep is
// validated against a brute-force enumeration oracle.
//
//===----------------------------------------------------------------------===//

#include "baselines/Enumerator.h"
#include "counting/Summation.h"
#include "presburger/Parser.h"

#include <gtest/gtest.h>

#include <random>

using namespace omega;

namespace {

AffineExpr var(const std::string &N) { return AffineExpr::variable(N); }

//===----------------------------------------------------------------------===//
// Sweep 1: projection modes x random clause shapes.
//===----------------------------------------------------------------------===//

struct ProjectionParam {
  ShadowMode Mode;
  unsigned Seed;
  friend std::ostream &operator<<(std::ostream &OS,
                                  const ProjectionParam &P) {
    return OS << "mode" << int(P.Mode) << "_seed" << P.Seed;
  }
};

class ProjectionSweep : public ::testing::TestWithParam<ProjectionParam> {};

TEST_P(ProjectionSweep, ExactOrDirectional) {
  ProjectionParam Param = GetParam();
  std::mt19937_64 Rng(Param.Seed);
  for (int Trial = 0; Trial < 12; ++Trial) {
    Conjunct C;
    auto RC = [&] { return BigInt(int64_t(Rng() % 9) - 4); };
    unsigned NumCons = 2 + Rng() % 3;
    for (unsigned I = 0; I < NumCons; ++I)
      C.add(Constraint::ge(RC() * var("x") + RC() * var("y") +
                           RC() * var("z") + AffineExpr(RC() * 2)));
    for (const char *V : {"x", "y", "z"}) {
      C.add(Constraint::ge(var(V) + AffineExpr(5)));
      C.add(Constraint::ge(AffineExpr(5) - var(V)));
    }
    std::vector<Conjunct> R = projectVars(C, {"y", "z"}, Param.Mode);
    if (Param.Mode == ShadowMode::Disjoint)
      EXPECT_TRUE(pairwiseDisjoint(R));
    for (int64_t X = -6; X <= 6; ++X) {
      bool Truth = false;
      for (int64_t Y = -5; Y <= 5 && !Truth; ++Y)
        for (int64_t Z = -5; Z <= 5 && !Truth; ++Z)
          Truth = C.contains(
              {{"x", BigInt(X)}, {"y", BigInt(Y)}, {"z", BigInt(Z)}});
      bool Got = false;
      for (const Conjunct &Cl : R)
        Got = Got || containsPoint(Cl, {{"x", BigInt(X)}});
      switch (Param.Mode) {
      case ShadowMode::Exact:
      case ShadowMode::Disjoint:
        EXPECT_EQ(Got, Truth) << "trial " << Trial << " x=" << X;
        break;
      case ShadowMode::Real: // Over-approximation.
        if (Truth)
          EXPECT_TRUE(Got) << "trial " << Trial << " x=" << X;
        break;
      case ShadowMode::Dark: // Under-approximation.
        if (Got)
          EXPECT_TRUE(Truth) << "trial " << Trial << " x=" << X;
        break;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllModes, ProjectionSweep,
    ::testing::Values(ProjectionParam{ShadowMode::Exact, 11},
                      ProjectionParam{ShadowMode::Exact, 12},
                      ProjectionParam{ShadowMode::Disjoint, 11},
                      ProjectionParam{ShadowMode::Disjoint, 13},
                      ProjectionParam{ShadowMode::Real, 11},
                      ProjectionParam{ShadowMode::Dark, 11}),
    [](const ::testing::TestParamInfo<ProjectionParam> &Info) {
      std::ostringstream OS;
      OS << Info.param;
      return OS.str();
    });

//===----------------------------------------------------------------------===//
// Sweep 2: bound strategies x divisor pairs on Σ_{a*i>=1, b*i<=n} i^d.
//===----------------------------------------------------------------------===//

struct StrategyParam {
  BoundStrategy Strategy;
  int A, B;
  unsigned Degree;
};

class StrategySweep : public ::testing::TestWithParam<StrategyParam> {};

TEST_P(StrategySweep, ExactStrategiesMatchOracleBoundsBracket) {
  StrategyParam P = GetParam();
  std::string Text = std::to_string(P.A) + "*i >= 1 && " +
                     std::to_string(P.B) + "*i <= n";
  Formula F = parseFormulaOrDie(Text);
  QuasiPolynomial X = QuasiPolynomial::pow(QuasiPolynomial::variable("i"),
                                           P.Degree);
  SumOptions Opts;
  Opts.Strategy = P.Strategy;
  PiecewiseValue V = sumOverFormula(F, {"i"}, X, Opts);
  ASSERT_FALSE(V.isUnbounded());
  for (int64_t N = 0; N <= 25; ++N) {
    Assignment S{{"n", BigInt(N)}};
    Rational Truth = enumerateSum(F, {"i"}, S, X, -1, 30, 0, 0);
    Rational Got = V.evaluate(S);
    switch (P.Strategy) {
    case BoundStrategy::Splinter:
    case BoundStrategy::SymbolicMod:
      EXPECT_EQ(Got, Truth) << "n=" << N;
      break;
    case BoundStrategy::UpperBound:
      EXPECT_GE(Got, Truth) << "n=" << N;
      break;
    case BoundStrategy::LowerBound:
      EXPECT_LE(Got, Truth) << "n=" << N;
      break;
    case BoundStrategy::Approximate:
      break; // Between the bounds by construction; nothing sharp to check.
    }
  }
}

std::vector<StrategyParam> strategyGrid() {
  std::vector<StrategyParam> Out;
  for (BoundStrategy S :
       {BoundStrategy::Splinter, BoundStrategy::SymbolicMod,
        BoundStrategy::UpperBound, BoundStrategy::LowerBound})
    for (int A : {1, 2})
      for (int B : {2, 3, 5})
        for (unsigned D : {0u, 1u, 2u})
          Out.push_back({S, A, B, D});
  return Out;
}

INSTANTIATE_TEST_SUITE_P(Grid, StrategySweep,
                         ::testing::ValuesIn(strategyGrid()));

//===----------------------------------------------------------------------===//
// Sweep 3: stride moduli x range offsets for counting.
//===----------------------------------------------------------------------===//

struct StrideParam {
  int Mod;
  int Residue;
};

class StrideSweep : public ::testing::TestWithParam<StrideParam> {};

TEST_P(StrideSweep, CountStriddenRange) {
  StrideParam P = GetParam();
  std::string Text = "1 <= x <= n && " + std::to_string(P.Mod) + " | x - " +
                     std::to_string(P.Residue);
  Formula F = parseFormulaOrDie(Text);
  PiecewiseValue V = countSolutions(F, {"x"});
  for (int64_t N = 0; N <= 3 * P.Mod + 4; ++N) {
    int64_t Expected = 0;
    for (int64_t X = 1; X <= N; ++X)
      if ((X - P.Residue) % P.Mod == 0)
        ++Expected;
    EXPECT_EQ(V.evaluate({{"n", BigInt(N)}}), Rational(BigInt(Expected)))
        << "n=" << N;
  }
}

INSTANTIATE_TEST_SUITE_P(
    ModGrid, StrideSweep,
    ::testing::Values(StrideParam{2, 0}, StrideParam{2, 1},
                      StrideParam{3, 0}, StrideParam{3, 2},
                      StrideParam{5, 1}, StrideParam{7, 3},
                      StrideParam{12, 5}));

//===----------------------------------------------------------------------===//
// Sweep 4: Faulhaber degree x range shape (negative and mixed ranges).
//===----------------------------------------------------------------------===//

class DegreeSweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(DegreeSweep, SumOverShiftedRange) {
  unsigned D = GetParam();
  // Σ_{i=-n}^{n} i^d: odd powers cancel, even powers double.
  Formula F = parseFormulaOrDie("0 - n <= i && i <= n");
  QuasiPolynomial X =
      QuasiPolynomial::pow(QuasiPolynomial::variable("i"), D);
  PiecewiseValue V = sumOverFormula(F, {"i"}, X);
  for (int64_t N = 0; N <= 9; ++N) {
    BigInt Expected(0);
    for (int64_t I = -N; I <= N; ++I)
      Expected += BigInt::pow(BigInt(I), D);
    EXPECT_EQ(V.evaluate({{"n", BigInt(N)}}), Rational(Expected))
        << "n=" << N;
  }
}

INSTANTIATE_TEST_SUITE_P(Degrees, DegreeSweep,
                         ::testing::Range(0u, 8u));

//===----------------------------------------------------------------------===//
// Sweep 5: random guarded loop nests (steps, guards, min/max) vs oracle.
//===----------------------------------------------------------------------===//

class NestSweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(NestSweep, RandomNestCounts) {
  std::mt19937_64 Rng(GetParam());
  for (int Trial = 0; Trial < 6; ++Trial) {
    // Build a random 2-level nest over symbol n.
    int64_t Step = 1 + int64_t(Rng() % 3);
    int64_t C1 = int64_t(Rng() % 3);
    std::string Text = "1 <= i <= n && " + std::to_string(Step) +
                       " | i - 1 && 1 <= j && j <= i + " +
                       std::to_string(C1);
    if (Rng() % 2)
      Text += " && j <= n";
    if (Rng() % 2)
      Text += " && i + j <= n + " + std::to_string(int64_t(Rng() % 4));
    Formula F = parseFormulaOrDie(Text);
    PiecewiseValue V = countSolutions(F, {"i", "j"});
    ASSERT_FALSE(V.isUnbounded()) << Text;
    for (int64_t N = 0; N <= 9; ++N) {
      Assignment S{{"n", BigInt(N)}};
      BigInt Truth = enumerateCount(F, {"i", "j"}, S, -1, 16, 0, 0);
      EXPECT_EQ(V.evaluate(S), Rational(Truth))
          << Text << " at n=" << N;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, NestSweep,
                         ::testing::Values(101u, 202u, 303u, 404u));

} // namespace
