//===- tests/PrintingRoundTripTest.cpp - Printers and parser fuzz --------===//
//
// Printing stability and a small random-formula fuzz: every randomly
// generated formula text must parse, simplify without error, and agree
// with direct evaluation on a grid.
//
//===----------------------------------------------------------------------===//

#include "omega/Omega.h"
#include "presburger/Parser.h"

#include <gtest/gtest.h>

#include <random>
#include <sstream>

using namespace omega;

namespace {

TEST(PrintingTest, ConstraintForms) {
  AffineExpr E = BigInt(2) * AffineExpr::variable("i") -
                 AffineExpr::variable("j") + AffineExpr(5);
  EXPECT_EQ(Constraint::ge(E).toString(), "2*i - j + 5 >= 0");
  EXPECT_EQ(Constraint::eq(E).toString(), "2*i - j + 5 = 0");
  EXPECT_EQ(Constraint::stride(BigInt(4), E).toString(), "4 | 2*i - j + 5");
}

TEST(PrintingTest, ConjunctWithWildcards) {
  Conjunct C;
  C.add(Constraint::ge(AffineExpr::variable("x")));
  std::string W = freshWildcard();
  C.addWildcard(W);
  C.add(Constraint::eq(AffineExpr::variable("x") -
                       BigInt(2) * AffineExpr::variable(W)));
  std::string S = C.toString();
  EXPECT_NE(S.find("exists " + W), std::string::npos);
  EXPECT_NE(S.find("x >= 0"), std::string::npos);
}

TEST(PrintingTest, FormulaStructure) {
  Formula F = parseFormulaOrDie("(1 <= x || x = -3) && !(2 | x)");
  std::string S = F.toString();
  EXPECT_NE(S.find("||"), std::string::npos);
  EXPECT_NE(S.find("!("), std::string::npos);
  EXPECT_EQ(Formula::trueFormula().toString(), "TRUE");
  EXPECT_EQ(Formula::falseFormula().toString(), "FALSE");
}

/// Random formula source text over one variable and one symbol.
std::string randomFormulaText(std::mt19937_64 &Rng, int Depth) {
  auto Expr = [&]() {
    std::ostringstream OS;
    int C = int(Rng() % 5) - 2;
    if (C != 1)
      OS << C << "*";
    OS << "x";
    int K = int(Rng() % 9) - 4;
    if (K >= 0)
      OS << " + " << K;
    else
      OS << " - " << -K;
    return OS.str();
  };
  if (Depth == 0 || Rng() % 3 == 0) {
    switch (Rng() % 4) {
    case 0:
      return Expr() + " >= 0";
    case 1:
      return Expr() + " <= n";
    case 2:
      return std::to_string(2 + Rng() % 3) + " | " + Expr();
    default:
      return Expr() + " = n";
    }
  }
  std::string L = randomFormulaText(Rng, Depth - 1);
  std::string R = randomFormulaText(Rng, Depth - 1);
  switch (Rng() % 3) {
  case 0:
    return "(" + L + ") && (" + R + ")";
  case 1:
    return "(" + L + ") || (" + R + ")";
  default:
    return "!(" + L + ")";
  }
}

TEST(ParserFuzzTest, RandomFormulasSimplifyFaithfully) {
  std::mt19937_64 Rng(31337);
  for (int Trial = 0; Trial < 40; ++Trial) {
    std::string Text = randomFormulaText(Rng, 3);
    ParseResult R = parseFormula(Text);
    ASSERT_TRUE(R) << Text << " : " << R.Error;
    std::vector<Conjunct> D = simplify(*R.Value);
    for (int64_t X = -6; X <= 6; ++X)
      for (int64_t N = -3; N <= 3; ++N) {
        Assignment A{{"x", BigInt(X)}, {"n", BigInt(N)}};
        bool Truth = R.Value->evaluate(A);
        bool Got = false;
        for (const Conjunct &C : D)
          Got = Got || C.contains(A);
        ASSERT_EQ(Got, Truth) << Text << " at x=" << X << " n=" << N;
      }
  }
}

TEST(ParserFuzzTest, DisjointModeFuzz) {
  std::mt19937_64 Rng(4242);
  SimplifyOptions Opts;
  Opts.Disjoint = true;
  for (int Trial = 0; Trial < 15; ++Trial) {
    std::string Text = randomFormulaText(Rng, 2);
    Formula F = parseFormulaOrDie(Text);
    std::vector<Conjunct> D = simplify(F, Opts);
    EXPECT_TRUE(pairwiseDisjoint(D)) << Text;
    for (int64_t X = -6; X <= 6; ++X) {
      Assignment A{{"x", BigInt(X)}, {"n", BigInt(2)}};
      bool Truth = F.evaluate(A);
      int Hits = 0;
      for (const Conjunct &C : D)
        Hits += C.contains(A);
      ASSERT_EQ(Hits > 0, Truth) << Text << " x=" << X;
      ASSERT_LE(Hits, 1) << Text << " x=" << X;
    }
  }
}

} // namespace
