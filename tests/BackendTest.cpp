//===- tests/BackendTest.cpp - The CountBackend layer ---------------------===//
//
// Unit tests for the pluggable backend seam (DESIGN.md §14): the automaton
// and enumerate backends on the paper's worked examples and on hand-picked
// degenerate shapes, bounding-box derivation, the Auto dispatcher heuristic
// and its refusal fallback, and the promoted brute-force oracle's
// refuse-don't-truncate contract.
//
//===----------------------------------------------------------------------===//

#include "baselines/Oracle.h"
#include "counting/Backend.h"
#include "counting/Summation.h"
#include "presburger/Parser.h"
#include "tools/FormulaFile.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

using namespace omega;

namespace {

/// Parses \p Text or fails the test.
Formula parse(const std::string &Text) {
  ParseResult R = parseFormula(Text);
  EXPECT_TRUE(R) << R.Error << " in: " << Text;
  return R ? *R.Value : Formula::disj({});
}

/// Counts \p Text over \p Vars on an explicitly requested backend.
CountResult countOn(BackendKind K, const std::string &Text,
                    const std::vector<std::string> &Vars) {
  CountOptions Opts;
  Opts.Backend = K;
  return countSolutions(parse(Text), VarSet(Vars.begin(), Vars.end()), Opts);
}

/// Extracts the exact integer answer or fails the test.
BigInt exact(const CountResult &R) {
  EXPECT_EQ(R.Status, CountStatus::Exact)
      << (R.Status == CountStatus::Error ? R.Err.toString() : "not exact");
  if (R.Status != CountStatus::Exact)
    return BigInt(-1);
  return R.Value.evaluateInt(Assignment{});
}

/// Asserts pugh, automaton, and enumerate all return the same exact count
/// for a concrete formula, and returns it.
BigInt expectAllAgree(const std::string &Text,
                      const std::vector<std::string> &Vars) {
  SCOPED_TRACE("formula: " + Text);
  BigInt Pugh = exact(countOn(BackendKind::Pugh, Text, Vars));
  BigInt Dfa = exact(countOn(BackendKind::Automaton, Text, Vars));
  BigInt Enum = exact(countOn(BackendKind::Enumerate, Text, Vars));
  EXPECT_EQ(Dfa, Pugh) << "automaton disagrees with pugh";
  EXPECT_EQ(Enum, Pugh) << "enumerate disagrees with pugh";
  return Pugh;
}

//===----------------------------------------------------------------------===//
// Worked examples: every committed golden formula, symbols pinned.
//===----------------------------------------------------------------------===//

TEST(BackendExamples, AllGoldenFormulasAgree) {
  // The committed examples are the paper's worked figures; the symbolic
  // ones (triangle, union, ...) use the single constant n, which we pin by
  // conjoining an equality and counting n as one more variable.
  const int64_t kPins[] = {0, 1, 7, 16};
  unsigned Checked = 0;
  for (const auto &Entry :
       std::filesystem::directory_iterator(EXAMPLES_DIR)) {
    if (Entry.path().extension() != ".presburger")
      continue;
    FormulaFile FF;
    std::string Err;
    ASSERT_TRUE(readFormulaFile(Entry.path().string(), FF, Err))
        << Entry.path() << ": " << Err;
    SCOPED_TRACE("example: " + Entry.path().string());

    Formula F = parse(FF.FormulaText);
    VarSet Counted(FF.Vars.begin(), FF.Vars.end());
    bool Symbolic = false;
    for (const std::string &V : F.freeVars())
      Symbolic |= !Counted.count(V);

    if (!Symbolic) {
      expectAllAgree(FF.FormulaText, FF.Vars);
      ++Checked;
      continue;
    }
    for (int64_t Pin : kPins) {
      std::vector<std::string> Vars = FF.Vars;
      Vars.push_back("n");
      expectAllAgree("(" + FF.FormulaText + ") && n = " +
                         std::to_string(Pin),
                     Vars);
    }
    ++Checked;
  }
  EXPECT_GE(Checked, 7u) << "example corpus went missing";
}

//===----------------------------------------------------------------------===//
// Automaton backend: degenerate and adversarial shapes.
//===----------------------------------------------------------------------===//

TEST(BackendAutomaton, EmptySet) {
  EXPECT_EQ(exact(countOn(BackendKind::Automaton,
                          "i >= 5 && i <= 3", {"i"})),
            BigInt(0));
  EXPECT_EQ(exact(countOn(BackendKind::Automaton,
                          "0 <= i <= 9 && 2*i = 5", {"i"})),
            BigInt(0));
}

TEST(BackendAutomaton, SinglePoint) {
  EXPECT_EQ(exact(countOn(BackendKind::Automaton,
                          "i = 7 && j = 0 - 3", {"i", "j"})),
            BigInt(1));
  EXPECT_EQ(exact(countOn(BackendKind::Automaton, "i = 0", {"i"})),
            BigInt(1));
}

TEST(BackendAutomaton, StrideConstraints) {
  // 0..100 with i ≡ 5 (mod 7): 5, 12, ..., 96 → 14 points.
  EXPECT_EQ(exact(countOn(BackendKind::Automaton,
                          "0 <= i <= 100 && 7 | i + 2", {"i"})),
            BigInt(14));
  // Two interacting strides over a negative-straddling range.
  expectAllAgree("0 - 20 <= i <= 20 && 3 | i && 4 | i + 2", {"i"});
  // Stride on a multi-variable expression.
  expectAllAgree("0 <= i <= 12 && 0 <= j <= 12 && 5 | 2*i + 3*j",
                 {"i", "j"});
}

TEST(BackendAutomaton, NegativeCoefficients) {
  expectAllAgree("0 - 6 <= i <= 9 && 0 - 6 <= j <= 9 && 0 - 3*i + 2*j <= 4",
                 {"i", "j"});
  expectAllAgree("0 - 10 <= i <= 10 && 0 - 2*i >= 0 - 7 && 0 - 3 <= i",
                 {"i"});
  // Equality with mixed-sign coefficients: 2i - 3j = 1 on a box.
  expectAllAgree("0 - 8 <= i <= 8 && 0 - 8 <= j <= 8 && 2*i - 3*j = 1",
                 {"i", "j"});
}

TEST(BackendAutomaton, BooleanStructure) {
  // Overlapping disjunction (must not double count) and negation.
  expectAllAgree("0 <= i <= 10 && (i <= 7 || i >= 4)", {"i"});
  expectAllAgree("0 <= i <= 10 && !(3 <= i <= 5)", {"i"});
  expectAllAgree("0 <= i <= 20 && !(2 | i) && (i <= 9 || 3 | i)", {"i"});
}

TEST(BackendAutomaton, QuantifiedInput) {
  // Quantifiers route through simplification to a wildcard-free DNF.
  expectAllAgree("1 <= i <= 30 && exists(k: i = 3*k + 1)", {"i"});
}

TEST(BackendAutomaton, UnboundedMatchesPugh) {
  CountResult R = countOn(BackendKind::Automaton, "i >= 0", {"i"});
  EXPECT_EQ(R.Status, CountStatus::Unbounded);
  EXPECT_TRUE(R.Value.isUnbounded());
}

TEST(BackendAutomaton, RefusesSymbolsAndWideCoefficients) {
  CountResult Sym = countOn(BackendKind::Automaton, "1 <= i <= n", {"i"});
  ASSERT_EQ(Sym.Status, CountStatus::Error);
  EXPECT_EQ(Sym.Err.Kind, ErrorKind::Unsupported);
  EXPECT_EQ(Sym.Err.Layer, "automaton");

  // 2^44 + 1 exceeds MaxMagnitudeBits (44).
  CountResult Wide = countOn(BackendKind::Automaton,
                             "17592186044417*i >= 0 && 0 <= i <= 1", {"i"});
  ASSERT_EQ(Wide.Status, CountStatus::Error);
  EXPECT_EQ(Wide.Err.Kind, ErrorKind::Unsupported);
}

//===----------------------------------------------------------------------===//
// Enumerate backend: summation and the volume cap.
//===----------------------------------------------------------------------===//

TEST(BackendEnumerate, SumsArbitraryPolynomials) {
  CountOptions Opts;
  Opts.Backend = BackendKind::Enumerate;
  Formula F = parse("1 <= i <= 10");
  QuasiPolynomial X = QuasiPolynomial::variable("i");
  CountResult R = sumPolynomial(F, {"i"}, X, Opts);
  EXPECT_EQ(exact(R), BigInt(55));

  Opts.Backend = BackendKind::Pugh;
  EXPECT_EQ(exact(sumPolynomial(F, {"i"}, X, Opts)), BigInt(55));
}

TEST(BackendEnumerate, RefusesOverCapVolume) {
  // 3,000,001 points > the 2^21 sweep cap: a typed refusal, not a stall.
  CountResult R =
      countOn(BackendKind::Enumerate, "0 <= i <= 3000000", {"i"});
  ASSERT_EQ(R.Status, CountStatus::Error);
  EXPECT_EQ(R.Err.Kind, ErrorKind::Unsupported);
  EXPECT_EQ(R.Err.Layer, "enumerate");
}

//===----------------------------------------------------------------------===//
// Bounding-box derivation.
//===----------------------------------------------------------------------===//

TEST(BackendBox, BoundedHull) {
  DerivedBox B =
      deriveCountingBox(parse("0 <= i <= 5 && 0 - 3 <= j <= 4 && i <= j"),
                        {"i", "j"});
  ASSERT_EQ(B.Outcome, BoxOutcome::Bounded);
  ASSERT_TRUE(B.Box.count("i") && B.Box.count("j"));
  // The hull may tighten via i <= j but must cover every solution.
  EXPECT_LE(B.Box.at("i").Lo, 0);
  EXPECT_GE(B.Box.at("i").Hi, 4);
  EXPECT_LE(B.Box.at("j").Lo, 0);
  EXPECT_GE(B.Box.at("j").Hi, 4);
}

TEST(BackendBox, UnionTakesTheWidestClause) {
  DerivedBox B = deriveCountingBox(
      parse("(0 <= i <= 2) || (10 <= i <= 12)"), {"i"});
  ASSERT_EQ(B.Outcome, BoxOutcome::Bounded);
  EXPECT_LE(B.Box.at("i").Lo, 0);
  EXPECT_GE(B.Box.at("i").Hi, 12);
}

TEST(BackendBox, EmptyAndUnbounded) {
  EXPECT_EQ(deriveCountingBox(parse("i >= 5 && i <= 3"), {"i"}).Outcome,
            BoxOutcome::Empty);
  EXPECT_EQ(deriveCountingBox(parse("i >= 0"), {"i"}).Outcome,
            BoxOutcome::Unbounded);
  // A lone stride is feasible and unbounded in both directions.
  EXPECT_EQ(deriveCountingBox(parse("3 | i"), {"i"}).Outcome,
            BoxOutcome::Unbounded);
  // An infeasible clause must not poison boundedness (its hull is empty).
  EXPECT_EQ(deriveCountingBox(
                parse("(0 <= i <= 4) || (i >= 9 && i <= 2)"), {"i"})
                .Outcome,
            BoxOutcome::Bounded);
}

//===----------------------------------------------------------------------===//
// The Auto dispatcher: heuristic picks and the refusal fallback.
//===----------------------------------------------------------------------===//

TEST(BackendDispatch, KindNamesRoundTrip) {
  BackendKind K;
  ASSERT_TRUE(backendKindFromName("pugh", K));
  EXPECT_EQ(K, BackendKind::Pugh);
  ASSERT_TRUE(backendKindFromName("automaton", K));
  EXPECT_EQ(K, BackendKind::Automaton);
  ASSERT_TRUE(backendKindFromName("enumerate", K));
  EXPECT_EQ(K, BackendKind::Enumerate);
  ASSERT_TRUE(backendKindFromName("auto", K));
  EXPECT_EQ(K, BackendKind::Auto);
  EXPECT_FALSE(backendKindFromName("barvinok", K));
  EXPECT_STREQ(countBackend(BackendKind::Automaton).name(), "automaton");
}

TEST(BackendDispatch, HeuristicPicks) {
  Formula Concrete = parse("0 <= i <= 9");
  Formula Symbolic = parse("0 <= i <= n");
  QuasiPolynomial One(1);
  CountOptions Opts;
  std::string Why;

  EXPECT_EQ(chooseBackend(Concrete, {"i"}, One, Opts, &Why),
            BackendKind::Automaton);
  EXPECT_NE(Why.find("constraint DFAs"), std::string::npos) << Why;

  EXPECT_EQ(chooseBackend(Symbolic, {"i"}, One, Opts, &Why),
            BackendKind::Pugh);
  EXPECT_NE(Why.find("symbolic"), std::string::npos) << Why;

  EXPECT_EQ(chooseBackend(Concrete, {"i"},
                          QuasiPolynomial::variable("i"), Opts, &Why),
            BackendKind::Pugh);
  EXPECT_NE(Why.find("non-constant summand"), std::string::npos) << Why;

  CountOptions Budgeted = Opts;
  Budgeted.Budget.MaxDnfClauses = 4;
  EXPECT_EQ(chooseBackend(Concrete, {"i"}, One, Budgeted, &Why),
            BackendKind::Pugh);
  EXPECT_NE(Why.find("budget"), std::string::npos) << Why;
}

TEST(BackendDispatch, AutoFallsBackOnRefusal) {
  // Auto picks the automaton (concrete, constant summand), the wide
  // coefficient forces a refusal, and the dispatcher must rerun pugh
  // rather than surface the error.
  CountResult R = countOn(BackendKind::Auto,
                          "17592186044417*i >= 0 && 0 <= i <= 1", {"i"});
  EXPECT_EQ(R.Backend, "pugh");
  EXPECT_NE(R.BackendReason.find("refused"), std::string::npos)
      << R.BackendReason;
  EXPECT_EQ(exact(R), BigInt(2));
}

TEST(BackendDispatch, ExplicitRequestNeverFallsBack) {
  CountResult R = countOn(BackendKind::Automaton, "1 <= i <= n", {"i"});
  EXPECT_EQ(R.Status, CountStatus::Error) << "explicit refusal must surface";
}

TEST(BackendDispatch, AutoTagsTheAnswer) {
  CountResult R = countOn(BackendKind::Auto, "0 <= i <= 9", {"i"});
  EXPECT_EQ(R.Backend, "automaton");
  EXPECT_FALSE(R.BackendReason.empty());
  EXPECT_EQ(exact(R), BigInt(10));

  CountResult S = countOn(BackendKind::Auto, "1 <= i <= n", {"i"});
  EXPECT_EQ(S.Backend, "pugh");
  EXPECT_EQ(S.Status, CountStatus::Exact);
}

//===----------------------------------------------------------------------===//
// The promoted oracle: refuse, never truncate.
//===----------------------------------------------------------------------===//

TEST(Oracle, ExactOnBoundedInput) {
  Result<BigInt> R = oracleCount(parse("1 <= i <= 10 && 2 | i"), {"i"});
  ASSERT_TRUE(R) << R.error().toString();
  EXPECT_EQ(*R, BigInt(5));
}

TEST(Oracle, RefusesUnboundedInput) {
  // The old silent-truncation bug: an unbounded set swept over a finite
  // window returns a plausible wrong count.  The contract is a typed
  // refusal instead.
  Result<BigInt> R = oracleCount(parse("i >= 0"), {"i"});
  ASSERT_FALSE(R);
  EXPECT_EQ(R.error().Kind, ErrorKind::Unsupported);
  EXPECT_NE(R.error().Message.find("unbounded"), std::string::npos);
}

TEST(Oracle, RefusesSymbolicInput) {
  Result<BigInt> R = oracleCount(parse("1 <= i <= n"), {"i"});
  ASSERT_FALSE(R);
  EXPECT_EQ(R.error().Kind, ErrorKind::Unsupported);
}

} // namespace
