//===- tests/MatrixTest.cpp - Matrix / SNF / HNF tests -------------------===//

#include "matrix/Matrix.h"

#include <gtest/gtest.h>

#include <random>

using omega::BigInt;
using omega::hermiteNormalForm;
using omega::HermiteForm;
using omega::Matrix;
using omega::SmithForm;
using omega::smithNormalForm;

namespace {

Matrix randomMatrix(std::mt19937_64 &Rng, unsigned Rows, unsigned Cols,
                    int Range) {
  Matrix M(Rows, Cols);
  for (unsigned R = 0; R < Rows; ++R)
    for (unsigned C = 0; C < Cols; ++C)
      M.at(R, C) = BigInt(int64_t(Rng() % (2 * Range + 1)) - Range);
  return M;
}

TEST(MatrixTest, IdentityAndProduct) {
  Matrix A = Matrix::fromRows({{1, 2}, {3, 4}});
  Matrix I = Matrix::identity(2);
  EXPECT_EQ(A * I, A);
  EXPECT_EQ(I * A, A);
  Matrix B = Matrix::fromRows({{5, 6}, {7, 8}});
  Matrix AB = Matrix::fromRows({{19, 22}, {43, 50}});
  EXPECT_EQ(A * B, AB);
}

TEST(MatrixTest, Transpose) {
  Matrix A = Matrix::fromRows({{1, 2, 3}, {4, 5, 6}});
  Matrix T = Matrix::fromRows({{1, 4}, {2, 5}, {3, 6}});
  EXPECT_EQ(A.transpose(), T);
  EXPECT_EQ(A.transpose().transpose(), A);
}

TEST(MatrixTest, Determinant) {
  EXPECT_EQ(Matrix::fromRows({{1, 2}, {3, 4}}).determinant().toInt64(), -2);
  EXPECT_EQ(Matrix::identity(5).determinant().toInt64(), 1);
  EXPECT_EQ(Matrix::fromRows({{2, 0, 0}, {0, 3, 0}, {0, 0, 4}})
                .determinant()
                .toInt64(),
            24);
  // Singular matrix.
  EXPECT_EQ(Matrix::fromRows({{1, 2}, {2, 4}}).determinant().toInt64(), 0);
  // Needs a row swap (zero pivot).
  EXPECT_EQ(Matrix::fromRows({{0, 1}, {1, 0}}).determinant().toInt64(), -1);
}

TEST(MatrixTest, DeterminantMultiplicativeRandom) {
  std::mt19937_64 Rng(11);
  for (int Trial = 0; Trial < 50; ++Trial) {
    Matrix A = randomMatrix(Rng, 4, 4, 5);
    Matrix B = randomMatrix(Rng, 4, 4, 5);
    EXPECT_EQ((A * B).determinant(), A.determinant() * B.determinant());
  }
}

TEST(MatrixTest, RowColumnOps) {
  Matrix A = Matrix::fromRows({{1, 2}, {3, 4}});
  A.swapRows(0, 1);
  EXPECT_EQ(A, Matrix::fromRows({{3, 4}, {1, 2}}));
  A.addRowMultiple(1, 0, BigInt(2));
  EXPECT_EQ(A, Matrix::fromRows({{3, 4}, {7, 10}}));
  A.negateCol(0);
  EXPECT_EQ(A, Matrix::fromRows({{-3, 4}, {-7, 10}}));
  A.swapCols(0, 1);
  EXPECT_EQ(A, Matrix::fromRows({{4, -3}, {10, -7}}));
  A.addColMultiple(0, 1, BigInt(1));
  EXPECT_EQ(A, Matrix::fromRows({{1, -3}, {3, -7}}));
}

void checkSmith(const Matrix &A) {
  SmithForm S = smithNormalForm(A);
  EXPECT_TRUE(S.U.isUnimodular()) << "U not unimodular for " << A.toString();
  EXPECT_TRUE(S.V.isUnimodular()) << "V not unimodular for " << A.toString();
  EXPECT_EQ(S.U * A * S.V, S.D) << "UAV != D for " << A.toString();
  // D diagonal, non-negative, divisibility chain, nonzeros first.
  for (unsigned R = 0; R < S.D.rows(); ++R)
    for (unsigned C = 0; C < S.D.cols(); ++C)
      if (R != C) {
        EXPECT_TRUE(S.D.at(R, C).isZero());
      }
  unsigned N = std::min(S.D.rows(), S.D.cols());
  for (unsigned I = 0; I < N; ++I) {
    EXPECT_GE(S.D.at(I, I).sign(), 0);
    if (I + 1 < N) {
      if (S.D.at(I, I).isZero()) {
        EXPECT_TRUE(S.D.at(I + 1, I + 1).isZero());
      } else {
        EXPECT_TRUE(S.D.at(I, I).divides(S.D.at(I + 1, I + 1)));
      }
    }
  }
  unsigned Rank = 0;
  for (unsigned I = 0; I < N; ++I)
    if (!S.D.at(I, I).isZero())
      ++Rank;
  EXPECT_EQ(Rank, S.Rank);
}

TEST(SmithFormTest, KnownSmall) {
  SmithForm S = smithNormalForm(Matrix::fromRows({{2, 4, 4}, {-6, 6, 12},
                                                  {10, 4, 16}}));
  EXPECT_EQ(S.D.at(0, 0).toInt64(), 2);
  EXPECT_EQ(S.D.at(1, 1).toInt64(), 2);
  EXPECT_EQ(S.D.at(2, 2).toInt64(), 156);
  checkSmith(Matrix::fromRows({{2, 4, 4}, {-6, 6, 12}, {10, 4, 16}}));
}

TEST(SmithFormTest, ZeroAndIdentity) {
  checkSmith(Matrix(3, 3));
  checkSmith(Matrix::identity(4));
  SmithForm S = smithNormalForm(Matrix(2, 5));
  EXPECT_EQ(S.Rank, 0u);
}

TEST(SmithFormTest, RectangularAndRankDeficient) {
  checkSmith(Matrix::fromRows({{1, 2, 3}, {4, 5, 6}}));
  checkSmith(Matrix::fromRows({{1, 2}, {2, 4}, {3, 6}}));
  SmithForm S = smithNormalForm(Matrix::fromRows({{1, 2}, {2, 4}, {3, 6}}));
  EXPECT_EQ(S.Rank, 1u);
}

TEST(SmithFormTest, SingleRowGcd) {
  SmithForm S = smithNormalForm(Matrix::fromRows({{6, 9}}));
  EXPECT_EQ(S.D.at(0, 0).toInt64(), 3); // gcd(6,9)
  checkSmith(Matrix::fromRows({{6, 9}}));
}

TEST(SmithFormTest, RandomProperty) {
  std::mt19937_64 Rng(21);
  for (int Trial = 0; Trial < 100; ++Trial) {
    unsigned Rows = 1 + Rng() % 4, Cols = 1 + Rng() % 4;
    checkSmith(randomMatrix(Rng, Rows, Cols, 8));
  }
}

void checkHermite(const Matrix &A) {
  HermiteForm H = hermiteNormalForm(A);
  EXPECT_TRUE(H.U.isUnimodular()) << "U not unimodular for " << A.toString();
  EXPECT_EQ(A * H.U, H.H) << "AU != H for " << A.toString();
  // Pivot structure: column pivots strictly descend in row index.
  int LastPivotRow = -1;
  for (unsigned C = 0; C < H.Rank; ++C) {
    int PivotRow = -1;
    for (unsigned R = 0; R < H.H.rows(); ++R)
      if (!H.H.at(R, C).isZero()) {
        PivotRow = int(R);
        break;
      }
    ASSERT_GE(PivotRow, 0);
    EXPECT_GT(PivotRow, LastPivotRow);
    LastPivotRow = PivotRow;
    EXPECT_TRUE(H.H.at(PivotRow, C).isPositive());
    // Entries left of the pivot in the pivot row are reduced mod pivot.
    for (unsigned C2 = 0; C2 < C; ++C2) {
      EXPECT_GE(H.H.at(PivotRow, C2).sign(), 0);
      EXPECT_LT(H.H.at(PivotRow, C2), H.H.at(PivotRow, C));
    }
  }
  // Columns beyond the rank are zero.
  for (unsigned C = H.Rank; C < H.H.cols(); ++C)
    for (unsigned R = 0; R < H.H.rows(); ++R)
      EXPECT_TRUE(H.H.at(R, C).isZero());
}

TEST(HermiteFormTest, KnownSmall) {
  HermiteForm H = hermiteNormalForm(Matrix::fromRows({{6, 9}}));
  EXPECT_EQ(H.H.at(0, 0).toInt64(), 3);
  EXPECT_EQ(H.Rank, 1u);
  checkHermite(Matrix::fromRows({{6, 9}}));
}

TEST(HermiteFormTest, RandomProperty) {
  std::mt19937_64 Rng(31);
  for (int Trial = 0; Trial < 100; ++Trial) {
    unsigned Rows = 1 + Rng() % 4, Cols = 1 + Rng() % 4;
    checkHermite(randomMatrix(Rng, Rows, Cols, 8));
  }
}

} // namespace
