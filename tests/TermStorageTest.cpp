//===- tests/TermStorageTest.cpp - Flat term storage vs map model --------===//
//
// Property tests for the flat id-sorted term array behind AffineExpr
// (DESIGN.md §16).  Every mutating operation — add, subtract, scale,
// exact-divide, substitute, setCoeff — is applied in lockstep to a
// string-keyed std::map reference model (the representation the flat
// array replaced), and the full term lists are compared after each step.
// The fixed-seed workload deliberately straddles the InlineCapacity
// boundary so both the inline buffer and the spilled heap array are
// exercised, along with the 4->5-term crossing itself.
//
// Also covered here: operator< agreeing with the documented name-ordered
// lexicographic contract, re-inlining on copy after a shrink, and the
// wildcard role bit on VarId.
//
//===----------------------------------------------------------------------===//

#include "presburger/AffineExpr.h"
#include "presburger/Var.h"
#include "presburger/VarTable.h"

#include <gtest/gtest.h>

#include <map>
#include <random>
#include <string>
#include <vector>

using omega::AffineExpr;
using omega::BigInt;
using omega::VarId;

namespace {

/// The representation AffineExpr used before interning: constant plus
/// name-keyed coefficient map with the same zero-elision invariant.
struct RefExpr {
  BigInt Const;
  std::map<std::string, BigInt> Terms;

  void setCoeff(const std::string &Name, BigInt C) {
    if (C.isZero())
      Terms.erase(Name);
    else
      Terms[Name] = std::move(C);
  }

  void addScaled(const RefExpr &R, const BigInt &Scale) {
    Const += R.Const * Scale;
    for (const auto &[Name, C] : R.Terms) {
      BigInt Sum = Terms.count(Name) ? Terms[Name] + C * Scale : C * Scale;
      setCoeff(Name, std::move(Sum));
    }
  }

  void scale(const BigInt &F) {
    if (F.isZero()) {
      Const = BigInt(0);
      Terms.clear();
      return;
    }
    Const *= F;
    for (auto &[Name, C] : Terms)
      C *= F;
  }

  // Matches AffineExpr::divCoeffsExact: variable coefficients only — the
  // stride-normalization shape, where the caller owns the constant.
  void divExact(const BigInt &G) {
    for (auto &[Name, C] : Terms)
      C /= G;
  }

  void substitute(const std::string &Name, const RefExpr &Replacement) {
    auto It = Terms.find(Name);
    if (It == Terms.end())
      return;
    BigInt C = It->second;
    Terms.erase(It);
    addScaled(Replacement, C);
  }

  BigInt coeffGcd() const {
    BigInt G(0);
    for (const auto &[Name, C] : Terms)
      G = BigInt::gcd(G, C);
    return G;
  }
};

/// Canonical comparison key per the documented operator< contract:
/// constant first, then (name, coeff) pairs in name order, shorter list
/// comparing less on a shared prefix.
std::vector<std::pair<std::string, BigInt>> refKey(const RefExpr &E) {
  return {E.Terms.begin(), E.Terms.end()};
}

bool refLess(const RefExpr &L, const RefExpr &R) {
  if (L.Const != R.Const)
    return L.Const < R.Const;
  return refKey(L) < refKey(R);
}

/// Full structural comparison: constant, term count, and every (name,
/// coeff) pair, walking the flat expression in name order so the two
/// iteration orders line up.
void expectSame(const AffineExpr &Flat, const RefExpr &Ref,
                const std::string &Context) {
  EXPECT_EQ(Flat.constant().toString(), Ref.Const.toString()) << Context;
  ASSERT_EQ(Flat.numVars(), Ref.Terms.size()) << Context;
  auto It = Ref.Terms.begin();
  Flat.forEachTermByName([&](VarId V, const BigInt &C) {
    ASSERT_NE(It, Ref.Terms.end()) << Context;
    EXPECT_EQ(omega::varName(V), It->first) << Context;
    EXPECT_EQ(C.toString(), It->second.toString()) << Context;
    ++It;
  });
  EXPECT_EQ(It, Ref.Terms.end()) << Context;
}

/// Six names: wider than InlineCapacity (4) so random expressions cross
/// the inline->spill boundary, single-letter so name order is obvious.
const std::vector<std::string> &roster() {
  static const std::vector<std::string> Names = {"a", "b", "i", "j", "k",
                                                 "n"};
  return Names;
}

struct Pair {
  AffineExpr Flat;
  RefExpr Ref;
};

Pair randomPair(std::mt19937 &Rng) {
  std::uniform_int_distribution<int> CoefDist(-50, 50);
  std::uniform_int_distribution<size_t> CountDist(0, roster().size());
  Pair P;
  BigInt K(CoefDist(Rng));
  P.Flat.setConstant(K);
  P.Ref.Const = K;
  size_t Count = CountDist(Rng);
  for (size_t I = 0; I < Count; ++I) {
    const std::string &Name = roster()[I];
    BigInt C(CoefDist(Rng));
    P.Flat.setCoeff(Name, C);
    P.Ref.setCoeff(Name, C);
  }
  return P;
}

} // namespace

TEST(TermStorageTest, DifferentialRandomOps) {
  std::mt19937 Rng(20260808);
  std::uniform_int_distribution<int> OpDist(0, 5);
  std::uniform_int_distribution<int> CoefDist(-50, 50);
  std::uniform_int_distribution<size_t> VarDist(0, roster().size() - 1);

  std::vector<Pair> Pool;
  for (int I = 0; I < 16; ++I)
    Pool.push_back(randomPair(Rng));

  for (int Step = 0; Step < 4000; ++Step) {
    Pair &P = Pool[Step % Pool.size()];
    const Pair &Q = Pool[VarDist(Rng) % Pool.size()];
    std::string Ctx = "step " + std::to_string(Step);
    switch (OpDist(Rng)) {
    case 0: { // add
      if (&P == &Q)
        break;
      P.Flat += Q.Flat;
      P.Ref.addScaled(Q.Ref, BigInt(1));
      break;
    }
    case 1: { // subtract
      if (&P == &Q)
        break;
      P.Flat -= Q.Flat;
      P.Ref.addScaled(Q.Ref, BigInt(-1));
      break;
    }
    case 2: { // scale
      BigInt F(CoefDist(Rng));
      P.Flat *= F;
      P.Ref.scale(F);
      break;
    }
    case 3: { // gcd-normalize, the canonicalization shape
      BigInt G = P.Flat.coeffGcd();
      EXPECT_EQ(G.toString(), P.Ref.coeffGcd().toString()) << Ctx;
      if (!G.isZero()) {
        P.Flat.divCoeffsExact(G);
        P.Ref.divExact(G);
      }
      break;
    }
    case 4: { // substitute a roster var with a small expression
      const std::string &Target = roster()[VarDist(Rng)];
      Pair Rep;
      BigInt K(CoefDist(Rng));
      Rep.Flat.setConstant(K);
      Rep.Ref.Const = K;
      const std::string &Other =
          roster()[(VarDist(Rng) + 1) % roster().size()];
      if (Other != Target) {
        BigInt C(CoefDist(Rng));
        Rep.Flat.setCoeff(Other, C);
        Rep.Ref.setCoeff(Other, C);
      }
      P.Flat.substitute(Target, Rep.Flat);
      P.Ref.substitute(Target, Rep.Ref);
      break;
    }
    default: { // point coefficient write (including zero = erase)
      const std::string &Name = roster()[VarDist(Rng)];
      BigInt C(CoefDist(Rng));
      P.Flat.setCoeff(Name, C);
      P.Ref.setCoeff(Name, C);
      break;
    }
    }
    expectSame(P.Flat, P.Ref, Ctx);
  }
}

TEST(TermStorageTest, CompareMatchesReferenceModel) {
  std::mt19937 Rng(4257);
  std::vector<Pair> Pool;
  for (int I = 0; I < 48; ++I)
    Pool.push_back(randomPair(Rng));
  for (size_t I = 0; I < Pool.size(); ++I)
    for (size_t J = 0; J < Pool.size(); ++J) {
      bool FlatLess = Pool[I].Flat < Pool[J].Flat;
      bool RefLess = refLess(Pool[I].Ref, Pool[J].Ref);
      EXPECT_EQ(FlatLess, RefLess) << Pool[I].Flat.toString() << " vs "
                                   << Pool[J].Flat.toString();
      bool FlatEq = Pool[I].Flat == Pool[J].Flat;
      EXPECT_EQ(FlatEq, !RefLess && !refLess(Pool[J].Ref, Pool[I].Ref));
      if (FlatEq)
        EXPECT_EQ(Pool[I].Flat.hash(), Pool[J].Flat.hash());
    }
}

TEST(TermStorageTest, InlineSpillBoundary) {
  AffineExpr E;
  EXPECT_TRUE(E.isInlineRep());
  // Terms 1..InlineCapacity stay in the inline buffer.
  for (uint32_t I = 0; I < AffineExpr::InlineCapacity; ++I) {
    E.setCoeff(roster()[I], BigInt(int(I) + 1));
    EXPECT_TRUE(E.isInlineRep()) << "term " << I + 1;
  }
  uint64_t SpillsBefore = omega::exprCounters().Spills.load();
  // Term InlineCapacity+1 spills to the heap, exactly once.
  E.setCoeff(roster()[AffineExpr::InlineCapacity], BigInt(99));
  EXPECT_FALSE(E.isInlineRep());
  EXPECT_EQ(omega::exprCounters().Spills.load(), SpillsBefore + 1);
  EXPECT_EQ(E.numVars(), AffineExpr::InlineCapacity + 1);

  // Shrinking back to InlineCapacity keeps the heap array (no shuffle on
  // the hot path), but a copy re-inlines: the copy constructor sizes to
  // the live term count, not the source capacity.
  E.setCoeff(roster()[AffineExpr::InlineCapacity], BigInt(0));
  EXPECT_FALSE(E.isInlineRep());
  EXPECT_EQ(E.numVars(), AffineExpr::InlineCapacity);
  AffineExpr Copy(E);
  EXPECT_TRUE(Copy.isInlineRep());
  EXPECT_TRUE(Copy == E);
  EXPECT_EQ(Copy.hash(), E.hash());
  EXPECT_EQ(Copy.toString(), E.toString());

  // Move of a spilled expression steals the heap array wholesale.
  AffineExpr Moved(std::move(E));
  EXPECT_FALSE(Moved.isInlineRep());
  EXPECT_TRUE(Moved == Copy);
}

TEST(TermStorageTest, WildcardRoleBits) {
  VarId Named = omega::internVar("storage_test_named");
  EXPECT_FALSE(Named.isWildcard());
  EXPECT_EQ(omega::lookupVar("storage_test_named"), Named);
  EXPECT_EQ(omega::internVar("storage_test_named"), Named);

  VarId Wild = omega::freshWildcardId();
  EXPECT_TRUE(Wild.isWildcard());
  // The role bit is a flag, not part of the table index: stripping it
  // yields a valid slot whose stored name round-trips through lookup.
  EXPECT_EQ(omega::lookupVar(omega::varName(Wild)), Wild);
  EXPECT_NE(Wild, Named);

  // Wildcards participate in expressions like any other variable, and
  // observable orderings go through names, not raw ids.
  AffineExpr E = AffineExpr::variable(Wild) * BigInt(3);
  EXPECT_TRUE(E.mentions(Wild));
  EXPECT_EQ(E.coeff(Wild).toString(), "3");
  EXPECT_EQ(E.toString(), "3*" + omega::varName(Wild));

  VarId Wild2 = omega::freshWildcardId();
  EXPECT_TRUE(Wild2.isWildcard());
  EXPECT_NE(Wild2, Wild);
  int BySlot = omega::compareVarNames(Wild, Wild2);
  int ByName = omega::varName(Wild).compare(omega::varName(Wild2));
  EXPECT_EQ(BySlot < 0, ByName < 0);
  EXPECT_EQ(BySlot > 0, ByName > 0);
}
