//===- tests/TraceTest.cpp - Hierarchical tracing contract ---------------===//
//
// The tracing contract (DESIGN.md §12): spans form one tree per query whose
// *shape* — the multiset of name-paths to the root — is identical at every
// worker count, because a span opened on a pool worker parents to the span
// that was open on the enqueuing thread.  The Chrome exporter must always
// produce a single JSON value that a strict parser accepts.
//
// The driver formula conjoins the paper's Figure 1 set (projection with
// splinters) with a disjunction, so one query exercises all nine traced
// phases: simplify, toDNF, crossConjoin, projectVars, splinter,
// makeDisjoint, coalesce, summation, snfReparam.
//
//===----------------------------------------------------------------------===//

#include "counting/Summation.h"
#include "omega/Omega.h"
#include "presburger/Parser.h"
#include "presburger/Var.h"
#include "support/Trace.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <cstring>
#include <map>
#include <string>
#include <vector>

using namespace omega;

namespace {

/// Hits every traced phase: the existential projects with six splinters
/// (Figure 1), the disjunction forces toDNF + crossConjoin + makeDisjoint,
/// and the stride atom gives snfReparam something to re-parameterize.
const char *AllPhasesFormula = "exists(b: 0 <= 3*b - a <= 7 && "
                               "1 <= a - 2*b <= 5) && "
                               "(0 <= a <= 30 || 2 | a)";

const char *PhaseNames[] = {"simplify",  "toDNF",      "crossConjoin",
                            "projectVars", "splinter", "makeDisjoint",
                            "coalesce",  "summation",  "snfReparam"};

/// Counts AllPhasesFormula once under tracing at the given worker count,
/// from a fully reset state, and returns the collected spans.  The query
/// opts out of the cache so the set of computed (span-producing)
/// projections cannot depend on cross-thread cache races.
std::shared_ptr<const TraceData> traceOneCount(unsigned Workers) {
  clearConjunctCache();
  resetWildcardState();
  ParseResult R = parseFormula(AllPhasesFormula);
  EXPECT_TRUE(R) << R.Error;
  CountOptions Opts;
  Opts.Workers = Workers;
  Opts.CacheEnabled = false;
  Opts.CollectTrace = true;
  CountResult CR = countSolutions(*R.Value, VarSet{"a"}, Opts);
  EXPECT_NE(CR.Status, CountStatus::Error) << CR.Err.toString();
  EXPECT_FALSE(CR.Value.isUnbounded());
  return CR.Trace;
}

/// The tree shape as a sorted multiset of root-paths ("simplify/toDNF").
std::vector<std::string> shapeOf(const TraceData &Data) {
  std::map<uint64_t, const TraceSpanRecord *> ById;
  for (const TraceSpanRecord &S : Data.Spans)
    ById[S.Id] = &S;
  std::vector<std::string> Paths;
  for (const TraceSpanRecord &S : Data.Spans) {
    std::string Path = S.Name;
    for (const TraceSpanRecord *P = &S; P->Parent;) {
      auto It = ById.find(P->Parent);
      if (It == ById.end()) {
        ADD_FAILURE() << "dangling parent id " << P->Parent;
        break;
      }
      P = It->second;
      Path = std::string(P->Name) + "/" + Path;
    }
    Paths.push_back(std::move(Path));
  }
  std::sort(Paths.begin(), Paths.end());
  return Paths;
}

//===----------------------------------------------------------------------===//
// Minimal strict JSON acceptor for the exporter round-trip: one value,
// nothing trailing.  Rejects bare control characters, unescaped quotes,
// naked NaN/Infinity — the things a sloppy string-concat exporter emits.
//===----------------------------------------------------------------------===//

class JsonAcceptor {
public:
  explicit JsonAcceptor(const std::string &Text) : S(Text) {}

  bool accept() {
    skipWs();
    if (!value())
      return false;
    skipWs();
    return Pos == S.size();
  }

private:
  const std::string &S;
  size_t Pos = 0;

  char peek() const { return Pos < S.size() ? S[Pos] : '\0'; }
  bool eat(char C) {
    if (peek() != C)
      return false;
    ++Pos;
    return true;
  }
  void skipWs() {
    while (Pos < S.size() && (S[Pos] == ' ' || S[Pos] == '\t' ||
                              S[Pos] == '\n' || S[Pos] == '\r'))
      ++Pos;
  }

  bool value() {
    switch (peek()) {
    case '{':
      return object();
    case '[':
      return array();
    case '"':
      return string();
    case 't':
      return literal("true");
    case 'f':
      return literal("false");
    case 'n':
      return literal("null");
    default:
      return number();
    }
  }

  bool literal(const char *Lit) {
    for (const char *P = Lit; *P; ++P)
      if (!eat(*P))
        return false;
    return true;
  }

  bool object() {
    if (!eat('{'))
      return false;
    skipWs();
    if (eat('}'))
      return true;
    do {
      skipWs();
      if (!string())
        return false;
      skipWs();
      if (!eat(':'))
        return false;
      skipWs();
      if (!value())
        return false;
      skipWs();
    } while (eat(','));
    return eat('}');
  }

  bool array() {
    if (!eat('['))
      return false;
    skipWs();
    if (eat(']'))
      return true;
    do {
      skipWs();
      if (!value())
        return false;
      skipWs();
    } while (eat(','));
    return eat(']');
  }

  bool string() {
    if (!eat('"'))
      return false;
    while (Pos < S.size()) {
      char C = S[Pos++];
      if (C == '"')
        return true;
      if (static_cast<unsigned char>(C) < 0x20)
        return false; // Bare control character.
      if (C == '\\') {
        if (Pos >= S.size())
          return false;
        char E = S[Pos++];
        if (E == 'u') {
          for (int I = 0; I < 4; ++I)
            if (Pos >= S.size() || !isxdigit(static_cast<unsigned char>(S[Pos++])))
              return false;
        } else if (!strchr("\"\\/bfnrt", E))
          return false;
      }
    }
    return false;
  }

  bool number() {
    size_t Start = Pos;
    eat('-');
    while (isdigit(static_cast<unsigned char>(peek())))
      ++Pos;
    if (eat('.'))
      while (isdigit(static_cast<unsigned char>(peek())))
        ++Pos;
    if (peek() == 'e' || peek() == 'E') {
      ++Pos;
      if (peek() == '+' || peek() == '-')
        ++Pos;
      while (isdigit(static_cast<unsigned char>(peek())))
        ++Pos;
    }
    return Pos > Start + (S[Start] == '-' ? 1 : 0);
  }
};

size_t countOccurrences(const std::string &Hay, const std::string &Needle) {
  size_t N = 0;
  for (size_t P = Hay.find(Needle); P != std::string::npos;
       P = Hay.find(Needle, P + Needle.size()))
    ++N;
  return N;
}

//===----------------------------------------------------------------------===//
// Tests
//===----------------------------------------------------------------------===//

TEST(Trace, DisabledIsInert) {
  ASSERT_FALSE(tracingEnabled());
  TraceSpan Span("simplify");
  EXPECT_FALSE(Span.active());
  Span.count(TraceCounter::ClausesOut, 3); // Must be a no-op, not a crash.
  traceCount(TraceCounter::CacheHits);
  traceAnnotate("budget_trip", "nope");
  EXPECT_EQ(currentTraceSpan(), 0u);
}

TEST(Trace, AllTracedPhasesHaveSpans) {
  std::shared_ptr<const TraceData> Data = traceOneCount(/*Workers=*/0);
  ASSERT_TRUE(Data);
  EXPECT_EQ(Data->Dropped, 0u);
  std::map<std::string, unsigned> ByName;
  for (const TraceSpanRecord &S : Data->Spans)
    ++ByName[S.Name];
  for (const char *Phase : PhaseNames)
    EXPECT_GE(ByName[Phase], 1u) << "no span for phase " << Phase;
}

TEST(Trace, TreeShapeInvariantAcrossWorkerCounts) {
  std::vector<std::string> Reference;
  shapeOf(*traceOneCount(/*Workers=*/0)).swap(Reference);
  ASSERT_FALSE(Reference.empty());
  for (unsigned W : {1u, 4u}) {
    std::vector<std::string> Got = shapeOf(*traceOneCount(W));
    EXPECT_EQ(Got, Reference) << "span tree shape diverged at workers=" << W;
  }
}

TEST(Trace, ParentLinkageAcrossPool) {
  std::shared_ptr<const TraceData> Data = traceOneCount(/*Workers=*/4);
  ASSERT_TRUE(Data);
  bool SawWorkerSpan = false;
  for (const TraceSpanRecord &S : Data->Spans) {
    if (S.Parent) {
      const TraceSpanRecord *P = Data->find(S.Parent);
      ASSERT_NE(P, nullptr) << "span " << S.Id << " has dangling parent";
      // One steady clock stamps every span, and a child is always opened
      // after its parent (the parent is still open on the enqueuing side).
      EXPECT_LE(P->StartNs, S.StartNs)
          << S.Name << " started before its parent " << P->Name;
    }
    if (S.Tid != 0) {
      SawWorkerSpan = true;
      // A pool-worker span must have been re-parented by TraceTaskScope;
      // an orphan here means the fan-out lost the enqueuing context.
      EXPECT_NE(S.Parent, 0u)
          << "worker-thread span " << S.Name << " (tid " << S.Tid
          << ") has no parent";
    }
  }
  EXPECT_TRUE(SawWorkerSpan)
      << "workers=4 ran no spans on pool threads; fan-out not exercised";
}

TEST(Trace, ChromeJsonRoundTrip) {
  std::shared_ptr<const TraceData> Data = traceOneCount(/*Workers=*/4);
  ASSERT_TRUE(Data);
  std::string Json = Data->toChromeJson();
  EXPECT_TRUE(JsonAcceptor(Json).accept()) << "exporter emitted invalid JSON";
  // One complete event per span, and the standard top-level key.
  EXPECT_NE(Json.find("\"traceEvents\""), std::string::npos);
  EXPECT_EQ(countOccurrences(Json, "\"ph\":\"X\""), Data->Spans.size());
}

TEST(Trace, SummaryListsEveryPhaseEvenWithoutSpans) {
  startTracing();
  { TraceSpan Span("simplify"); } // One span; the other seven have none.
  std::shared_ptr<const TraceData> Data = stopTracing();
  ASSERT_TRUE(Data);
  std::string Summary = Data->toSummary();
  for (const char *Phase : PhaseNames)
    EXPECT_NE(Summary.find(Phase), std::string::npos)
        << "summary dropped phase " << Phase << " (CI greps for all nine)";
}

TEST(Trace, CountersAttributedToPhases) {
  std::shared_ptr<const TraceData> Data = traceOneCount(/*Workers=*/0);
  ASSERT_TRUE(Data);
  uint64_t Splinters = 0, ProjectedConstraints = 0;
  for (const TraceSpanRecord &S : Data->Spans) {
    if (std::string(S.Name) == "splinter")
      Splinters += S.Counters[unsigned(TraceCounter::Splinters)];
    if (std::string(S.Name) == "projectVars")
      ProjectedConstraints +=
          S.Counters[unsigned(TraceCounter::ConstraintsIn)];
  }
  EXPECT_GE(Splinters, 1u) << "Figure 1 projection must splinter";
  EXPECT_GT(ProjectedConstraints, 0u);
}

} // namespace
