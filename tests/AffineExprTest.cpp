//===- tests/AffineExprTest.cpp - AffineExpr & Constraint tests ----------===//

#include "presburger/AffineExpr.h"
#include "presburger/Constraint.h"

#include <gtest/gtest.h>

using namespace omega;

namespace {

AffineExpr var(const char *N) { return AffineExpr::variable(N); }

TEST(AffineExprTest, BasicAlgebra) {
  AffineExpr E = var("i") * BigInt(2) + var("j") - AffineExpr(3);
  EXPECT_EQ(E.coeff("i").toInt64(), 2);
  EXPECT_EQ(E.coeff("j").toInt64(), 1);
  EXPECT_EQ(E.coeff("k").toInt64(), 0);
  EXPECT_EQ(E.constant().toInt64(), -3);
  EXPECT_EQ(E.numVars(), 2u);
  EXPECT_FALSE(E.isConstant());
  AffineExpr Neg = -E;
  EXPECT_EQ(Neg.coeff("i").toInt64(), -2);
  EXPECT_EQ(Neg.constant().toInt64(), 3);
  EXPECT_EQ(E + Neg, AffineExpr(0));
  EXPECT_TRUE((E - E).isZero());
}

TEST(AffineExprTest, ZeroCoefficientsNotStored) {
  AffineExpr E = var("i") + var("j");
  E -= var("j");
  EXPECT_EQ(E.numVars(), 1u);
  EXPECT_FALSE(E.mentions("j"));
  E *= BigInt(0);
  EXPECT_TRUE(E.isZero());
  EXPECT_EQ(E.numVars(), 0u);
}

TEST(AffineExprTest, Substitute) {
  // i := 2k + 1 in (3i + j).
  AffineExpr E = var("i") * BigInt(3) + var("j");
  E.substitute("i", var("k") * BigInt(2) + AffineExpr(1));
  EXPECT_EQ(E.coeff("k").toInt64(), 6);
  EXPECT_EQ(E.coeff("j").toInt64(), 1);
  EXPECT_EQ(E.constant().toInt64(), 3);
  EXPECT_FALSE(E.mentions("i"));
  // Substituting an absent variable is a no-op.
  AffineExpr F = var("x");
  F.substitute("y", AffineExpr(5));
  EXPECT_EQ(F, var("x"));
}

TEST(AffineExprTest, EvaluateAndGcd) {
  AffineExpr E = var("i") * BigInt(4) - var("j") * BigInt(6) + AffineExpr(9);
  Assignment A{{"i", BigInt(2)}, {"j", BigInt(1)}};
  EXPECT_EQ(E.evaluate(A).toInt64(), 11);
  EXPECT_EQ(E.coeffGcd().toInt64(), 2);
  EXPECT_EQ(AffineExpr(7).coeffGcd().toInt64(), 0);
}

TEST(AffineExprTest, RenameAndToString) {
  AffineExpr E = var("i") * BigInt(2) - var("j") - AffineExpr(5);
  E.renameVar("j", "m");
  EXPECT_TRUE(E.mentions("m"));
  EXPECT_FALSE(E.mentions("j"));
  EXPECT_EQ(E.toString(), "2*i - m - 5");
  EXPECT_EQ(AffineExpr(0).toString(), "0");
  EXPECT_EQ((-var("x")).toString(), "-x");
}

TEST(ConstraintTest, HoldsSemantics) {
  Assignment A{{"x", BigInt(6)}, {"y", BigInt(2)}};
  EXPECT_TRUE(Constraint::eq(var("x") - var("y") * BigInt(3)).holds(A));
  EXPECT_TRUE(Constraint::ge(var("x") - AffineExpr(6)).holds(A));
  EXPECT_FALSE(Constraint::ge(var("y") - var("x")).holds(A));
  EXPECT_TRUE(Constraint::stride(BigInt(3), var("x")).holds(A));
  EXPECT_FALSE(Constraint::stride(BigInt(4), var("x")).holds(A));
  EXPECT_TRUE(Constraint::lt(var("y"), var("x")).holds(A));
  EXPECT_FALSE(Constraint::lt(var("x"), var("x")).holds(A));
}

TEST(ConstraintTest, NormalizeEquality) {
  // 2x - 4 = 0 -> x - 2 = 0.
  Constraint C = Constraint::eq(var("x") * BigInt(2) - AffineExpr(4));
  EXPECT_TRUE(C.normalize());
  EXPECT_EQ(C.expr().coeff("x").toInt64(), 1);
  EXPECT_EQ(C.expr().constant().toInt64(), -2);
  // 2x + 1 = 0 is infeasible over integers.
  Constraint Bad = Constraint::eq(var("x") * BigInt(2) + AffineExpr(1));
  EXPECT_FALSE(Bad.normalize());
}

TEST(ConstraintTest, NormalizeTightensInequality) {
  // 2x - 5 >= 0 tightens to x - 3 >= 0 (x >= 2.5 means x >= 3).
  Constraint C = Constraint::ge(var("x") * BigInt(2) - AffineExpr(5));
  EXPECT_TRUE(C.normalize());
  EXPECT_EQ(C.expr().coeff("x").toInt64(), 1);
  EXPECT_EQ(C.expr().constant().toInt64(), -3);
  // Constant-only: 0 >= 0 fine, -1 >= 0 infeasible.
  EXPECT_TRUE(Constraint::ge(AffineExpr(0)).normalize());
  EXPECT_FALSE(Constraint::ge(AffineExpr(-1)).normalize());
}

TEST(ConstraintTest, NormalizeStride) {
  // 3 | 6x + 7 -> 3 | 1 (after reducing coefficients) -> infeasible.
  Constraint C =
      Constraint::stride(BigInt(3), var("x") * BigInt(6) + AffineExpr(7));
  EXPECT_FALSE(C.normalize());
  // 3 | 4x + 7 -> 3 | x + 1.
  Constraint D =
      Constraint::stride(BigInt(3), var("x") * BigInt(4) + AffineExpr(7));
  EXPECT_TRUE(D.normalize());
  EXPECT_EQ(D.expr().coeff("x").toInt64(), 1);
  EXPECT_EQ(D.expr().constant().toInt64(), 1);
  // 1 | anything is trivially true.
  Constraint E = Constraint::stride(BigInt(1), var("x") * BigInt(9));
  EXPECT_TRUE(E.normalize());
  EXPECT_TRUE(E.isTriviallyTrue());
}

TEST(ConstraintTest, TrivialityChecks) {
  EXPECT_TRUE(Constraint::ge(AffineExpr(3)).isTriviallyTrue());
  EXPECT_TRUE(Constraint::ge(AffineExpr(-3)).isTriviallyFalse());
  EXPECT_TRUE(Constraint::eq(AffineExpr(0)).isTriviallyTrue());
  EXPECT_TRUE(Constraint::eq(AffineExpr(1)).isTriviallyFalse());
  EXPECT_FALSE(Constraint::ge(var("x")).isTriviallyTrue());
  EXPECT_FALSE(Constraint::ge(var("x")).isTriviallyFalse());
  EXPECT_TRUE(Constraint::stride(BigInt(5), AffineExpr(10)).isTriviallyTrue());
  EXPECT_TRUE(Constraint::stride(BigInt(5), AffineExpr(7)).isTriviallyFalse());
}

} // namespace
