//===- tests/OmegatidyTest.cpp - omegatidy lint engine tests -------------===//
//
// Rule-by-rule coverage of tools/TidyLint.h on inline snippets, plus the
// on-disk fixture pair under tests/lint/: the dirty tree must produce
// exactly the expected findings and the clean tree none.
//
//===----------------------------------------------------------------------===//

#include "TidyLint.h"

#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

using omega::tidy::Finding;
using omega::tidy::lintSource;

namespace {

std::vector<Finding> lint(const std::string &RelPath,
                          const std::string &Text) {
  return lintSource(RelPath, RelPath, Text);
}

/// The rules reported, in position order.
std::vector<std::string> rulesOf(const std::vector<Finding> &Fs) {
  std::vector<std::string> Out;
  for (const Finding &F : Fs)
    Out.push_back(F.Rule);
  return Out;
}

bool hasRule(const std::vector<Finding> &Fs, const std::string &Rule) {
  for (const Finding &F : Fs)
    if (F.Rule == Rule)
      return true;
  return false;
}

std::string readFile(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  EXPECT_TRUE(In.good()) << "missing fixture: " << Path;
  std::ostringstream SS;
  SS << In.rdbuf();
  return SS.str();
}

TEST(Omegatidy, AssertFlaggedInSrcOnly) {
  const std::string Code = "void f() { assert(x > 0); }\n";
  EXPECT_EQ(rulesOf(lint("src/poly/F.cpp", Code)),
            std::vector<std::string>{"assert"});
  // Outside src/ the rule does not apply (tests assert freely).
  EXPECT_TRUE(lint("tests/F.cpp", Code).empty());
  // static_assert is a different token and always fine.
  EXPECT_TRUE(lint("src/poly/F.cpp", "static_assert(sizeof(int) == 4);\n")
                  .empty());
}

TEST(Omegatidy, CassertIncludeFlagged) {
  EXPECT_EQ(rulesOf(lint("src/a/B.cpp", "#include <cassert>\n")),
            std::vector<std::string>{"assert"});
  EXPECT_TRUE(lint("bench/B.cpp", "#include <cassert>\n").empty());
}

TEST(Omegatidy, CommentsAndStringsDoNotTrigger) {
  EXPECT_TRUE(lint("src/a/B.cpp",
                   "// assert(x) in prose\n"
                   "/* new int */\n"
                   "const char *S = \"assert(new std::mutex)\";\n")
                  .empty());
}

TEST(Omegatidy, NakedNewAndMallocFamily) {
  EXPECT_EQ(rulesOf(lint("src/a/B.cpp", "int *P = new int;\n")),
            std::vector<std::string>{"naked-new"});
  EXPECT_EQ(rulesOf(lint("tools/t.cpp", "void *P = malloc(8);\n")),
            std::vector<std::string>{"naked-new"});
  EXPECT_EQ(rulesOf(lint("tools/t.cpp", "std::free(P);\n")),
            std::vector<std::string>{"naked-new"});
  // BigInt.cpp spill paths are exempt wholesale.
  EXPECT_TRUE(
      lint("src/support/BigInt.cpp", "Limb *P = new Limb[N];\n").empty());
  // Declaring the allocator operators is not using naked new.
  EXPECT_TRUE(
      lint("src/a/B.cpp", "void *operator new(std::size_t N);\n").empty());
}

TEST(Omegatidy, SuppressionCoversLineAndNextLine) {
  EXPECT_TRUE(lint("src/a/B.cpp",
                   "// justified. omegatidy: allow(naked-new)\n"
                   "int *P = new int;\n")
                  .empty());
  EXPECT_TRUE(
      lint("src/a/B.cpp", "int *P = new int; // omegatidy: allow(naked-new)\n")
          .empty());
  // The wrong rule name does not silence the finding.
  EXPECT_EQ(rulesOf(lint("src/a/B.cpp",
                         "// omegatidy: allow(assert)\n"
                         "int *P = new int;\n")),
            std::vector<std::string>{"naked-new"});
}

TEST(Omegatidy, PlacementNewIsNotNakedNew) {
  // Placement new constructs into storage the caller already owns; it
  // performs no allocation, so the naked-new rule stays silent.
  EXPECT_TRUE(lint("src/a/B.cpp", "new (Slot) Term{V, C};\n").empty());
  EXPECT_TRUE(lint("src/a/B.cpp", "::new (P + I) BigInt(X);\n").empty());
  EXPECT_EQ(rulesOf(lint("src/a/B.cpp", "int *P = new int;\n")),
            std::vector<std::string>{"naked-new"});
}

TEST(Omegatidy, StringKeyedVariableContainers) {
  const std::string Code = "std::map<std::string, BigInt> Coeffs;\n";
  EXPECT_EQ(rulesOf(lint("src/counting/S.cpp", Code)),
            std::vector<std::string>{"string-keyed-vars"});
  EXPECT_TRUE(hasRule(lint("src/omega/P.cpp",
                           "std::unordered_map<std::string, VarId> Ids;\n"),
                      "string-keyed-vars"));
  EXPECT_TRUE(hasRule(lint("src/omega/P.cpp",
                           "std::map<std::string, omega::BigInt> M;\n"),
                      "string-keyed-vars"));
  // The parser and the Var boundary are the blessed homes of name maps.
  EXPECT_TRUE(lint("src/presburger/Parser.cpp", Code).empty());
  EXPECT_TRUE(lint("src/presburger/VarTable.cpp", Code).empty());
  EXPECT_TRUE(lint("src/presburger/Var.h",
                   "#ifndef OMEGA_PRESBURGER_VAR_H\n"
                   "#define OMEGA_PRESBURGER_VAR_H\n" +
                       Code + "#endif\n")
                  .empty());
  // Outside src/ (tools, tests, bench) name maps face the user and are fine.
  EXPECT_TRUE(lint("tools/t.cpp", Code).empty());
  // Id-keyed and string-to-string maps are not variable valuations.
  EXPECT_TRUE(
      lint("src/counting/S.cpp", "std::map<VarId, BigInt> M;\n").empty());
  EXPECT_TRUE(lint("src/counting/S.cpp",
                   "std::map<std::string, std::string> Renames;\n")
                  .empty());
  // Suppressible like every rule.
  EXPECT_TRUE(lint("src/counting/S.cpp",
                   "// omegatidy: allow(string-keyed-vars)\n" + Code)
                  .empty());
}

TEST(Omegatidy, RawSynchronizationTypesFlagged) {
  for (const char *Bad :
       {"std::mutex M;\n", "std::lock_guard<std::mutex> L(M);\n",
        "std::condition_variable Cv;\n"})
    EXPECT_TRUE(hasRule(lint("src/a/B.cpp", Bad), "mutex-wrapper")) << Bad;
  EXPECT_EQ(rulesOf(lint("src/a/B.cpp", "#include <mutex>\n")),
            std::vector<std::string>{"mutex-wrapper"});
  // The annotation layer itself is the one blessed home of the raw types.
  EXPECT_TRUE(lint("src/support/ThreadAnnotations.h",
                   "#ifndef OMEGA_SUPPORT_THREADANNOTATIONS_H\n"
                   "#define OMEGA_SUPPORT_THREADANNOTATIONS_H\n"
                   "#include <mutex>\nstd::mutex M;\n#endif\n")
                  .empty());
  // The wrappers are fine anywhere.
  EXPECT_TRUE(
      lint("src/a/B.cpp", "Mutex M;\nMutexLock Lock(M);\n").empty());
}

TEST(Omegatidy, GuardedByRequiredNextToMutex) {
  const std::string Unguarded = "class C {\n"
                                "  Mutex M;\n"
                                "  int Hits = 0;\n"
                                "};\n";
  std::vector<Finding> Fs = lint("src/a/B.cpp", Unguarded);
  ASSERT_EQ(rulesOf(Fs), std::vector<std::string>{"guarded-by"});
  EXPECT_EQ(Fs[0].Line, 3u);
  EXPECT_NE(Fs[0].Message.find("'Hits'"), std::string::npos);

  // Annotated, atomic, const, static, ConditionVariable, and function
  // members are all acceptable siblings.
  EXPECT_TRUE(lint("src/a/B.cpp",
                   "class C {\n"
                   "  mutable Mutex M;\n"
                   "  int Hits OMEGA_GUARDED_BY(M) = 0;\n"
                   "  std::vector<int> Log OMEGA_GUARDED_BY(M);\n"
                   "  std::atomic<int> Peeks{0};\n"
                   "  ConditionVariable Cv;\n"
                   "  const int Cap = 4;\n"
                   "  static int Global;\n"
                   "  int size() const;\n"
                   "};\n")
                  .empty());

  // A class without a Mutex member owes nothing.
  EXPECT_TRUE(lint("src/a/B.cpp", "class C { int X = 0; };\n").empty());
}

TEST(Omegatidy, GuardedBySeesThroughTemplatesAndBraceInit) {
  // The function-pointer-ish template argument must not read as a
  // function declaration, and brace-init must not end the statement.
  std::vector<Finding> Fs =
      lint("src/a/B.cpp", "struct S {\n"
                          "  Mutex M;\n"
                          "  std::function<void(int)> Fn;\n"
                          "  std::atomic<bool> Stop{false};\n"
                          "};\n");
  ASSERT_EQ(rulesOf(Fs), std::vector<std::string>{"guarded-by"});
  EXPECT_NE(Fs[0].Message.find("'Fn'"), std::string::npos);
}

TEST(Omegatidy, TraceSpanTemporaries) {
  EXPECT_EQ(rulesOf(lint("src/a/B.cpp", "TraceSpan(\"phase\");\n")),
            std::vector<std::string>{"trace-span-temp"});
  EXPECT_EQ(rulesOf(lint("src/a/B.cpp", "omega::TraceSpan{\"phase\"};\n")),
            std::vector<std::string>{"trace-span-temp"});
  EXPECT_TRUE(
      lint("src/a/B.cpp", "TraceSpan Span(\"phase\");\n").empty());
  // Trace.{h,cpp} declare the constructors; exempt.
  EXPECT_TRUE(
      lint("src/support/Trace.h",
           "#ifndef OMEGA_SUPPORT_TRACE_H\n#define OMEGA_SUPPORT_TRACE_H\n"
           "TraceSpan(const char *Name);\n#endif\n")
          .empty());
}

TEST(Omegatidy, HeaderGuardSpellsThePath) {
  EXPECT_EQ(omega::tidy::expectedHeaderGuard("src/support/Cache.h"),
            "OMEGA_SUPPORT_CACHE_H");
  EXPECT_EQ(omega::tidy::expectedHeaderGuard("tools/Options.h"),
            "OMEGA_TOOLS_OPTIONS_H");
  EXPECT_EQ(omega::tidy::expectedHeaderGuard("src/support/BigInt.h"),
            "OMEGA_SUPPORT_BIGINT_H");

  EXPECT_TRUE(lint("src/a/Good.h",
                   "#ifndef OMEGA_A_GOOD_H\n#define OMEGA_A_GOOD_H\n"
                   "#endif\n")
                  .empty());
  EXPECT_EQ(rulesOf(lint("src/a/Bad.h",
                         "#ifndef WRONG_H\n#define WRONG_H\n#endif\n")),
            std::vector<std::string>{"header-guard"});
  EXPECT_EQ(rulesOf(lint("src/a/None.h", "int x;\n")),
            std::vector<std::string>{"header-guard"});
  // Mismatched #define counts as an incomplete guard.
  EXPECT_EQ(rulesOf(lint("src/a/Mismatch.h",
                         "#ifndef OMEGA_A_MISMATCH_H\n#define OTHER_H\n"
                         "#endif\n")),
            std::vector<std::string>{"header-guard"});
}

TEST(Omegatidy, IncludeHygiene) {
  EXPECT_EQ(rulesOf(lint("src/a/B.cpp", "#include \"../support/X.h\"\n")),
            std::vector<std::string>{"include-hygiene"});
  EXPECT_EQ(rulesOf(lint("src/a/B.h",
                         "#ifndef OMEGA_A_B_H\n#define OMEGA_A_B_H\n"
                         "using namespace omega;\n#endif\n")),
            std::vector<std::string>{"include-hygiene"});
  // `using namespace` in a .cpp is idiomatic here.
  EXPECT_TRUE(lint("src/a/B.cpp", "using namespace omega;\n").empty());
}

TEST(Omegatidy, FindingRendersPositioned) {
  std::vector<Finding> Fs =
      lint("src/a/B.cpp", "\n  int *P = new int;\n");
  ASSERT_EQ(Fs.size(), 1u);
  EXPECT_EQ(Fs[0].Line, 2u);
  EXPECT_EQ(Fs[0].Col, 12u);
  EXPECT_EQ(Fs[0].toString().rfind("src/a/B.cpp:2:12: naked-new:", 0), 0u);
}

TEST(Omegatidy, LegacyKnobSettersBanned) {
  // The retired global setters are flagged in every tree, qualified or not:
  // the replacement is per-query CountOptions / ServerOptions.
  EXPECT_EQ(rulesOf(lint("src/a/B.cpp", "void f() { setWorkerCount(2); }\n")),
            std::vector<std::string>{"legacy-knob"});
  EXPECT_EQ(rulesOf(lint("tools/t.cpp",
                         "omega::setConjunctCacheCapacity(1 << 10);\n")),
            std::vector<std::string>{"legacy-knob"});
  EXPECT_EQ(rulesOf(lint("bench/b.cpp", "setArithOpCounting(true);\n")),
            std::vector<std::string>{"legacy-knob"});
  // Mentions in comments or strings stay silent, like every other rule.
  EXPECT_TRUE(lint("src/a/B.cpp",
                   "// setWorkerCount was removed; see DESIGN.md\n"
                   "const char *S = \"setArithOpCounting\";\n")
                  .empty());
  // Suppression machinery applies.
  EXPECT_TRUE(lint("src/a/B.cpp",
                   "setWorkerCount(2); // omegatidy: allow(legacy-knob)\n")
                  .empty());
}

// --- On-disk fixtures ----------------------------------------------------

TEST(OmegatidyFixtures, DirtyTreeFindsEverything) {
  const std::string Dir = OMEGA_LINT_FIXTURES "/dirty/src/support/";
  std::vector<Finding> Header =
      lintSource("Dirty.h", "src/support/Dirty.h", readFile(Dir + "Dirty.h"));
  std::vector<std::string> HeaderRuleList = rulesOf(Header);
  std::multiset<std::string> HeaderRules(HeaderRuleList.begin(),
                                         HeaderRuleList.end());
  EXPECT_EQ(HeaderRules,
            (std::multiset<std::string>{
                "assert",          // #include <cassert>
                "guarded-by",      // Count
                "guarded-by",      // Capacity
                "header-guard",    // WRONG_GUARD_H
                "include-hygiene", // "../escape/Path.h"
                "include-hygiene", // using namespace in header
                "mutex-wrapper",   // #include <mutex>
                "mutex-wrapper",   // std::mutex member
                "string-keyed-vars", // std::map<std::string, BigInt>
                "string-keyed-vars", // std::unordered_map<std::string, VarId>
            }));

  std::vector<Finding> Impl = lintSource("Dirty.cpp", "src/support/Dirty.cpp",
                                         readFile(Dir + "Dirty.cpp"));
  std::vector<std::string> ImplRuleList = rulesOf(Impl);
  std::multiset<std::string> ImplRules(ImplRuleList.begin(),
                                       ImplRuleList.end());
  EXPECT_EQ(ImplRules, (std::multiset<std::string>{
                           "assert",          // #include <assert.h>
                           "assert",          // assert(2 + 2 == 4)
                           "legacy-knob",     // setWorkerCount(4)
                           "legacy-knob",     // omega::setConjunctCacheCapacity
                           "legacy-knob",     // setArithOpCounting(true)
                           "naked-new",       // new int(3)
                           "naked-new",       // malloc(16)
                           "naked-new",       // free(Buf)
                           "trace-span-temp", // TraceSpan("phase")
                           "trace-span-temp", // omega::TraceSpan("sub")
                       }));
}

TEST(OmegatidyFixtures, CleanTreeIsClean) {
  const std::string Path =
      OMEGA_LINT_FIXTURES "/clean/src/support/Clean.h";
  std::vector<Finding> Fs =
      lintSource("Clean.h", "src/support/Clean.h", readFile(Path));
  EXPECT_TRUE(Fs.empty()) << Fs[0].toString();
}

} // namespace
