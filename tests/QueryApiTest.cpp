//===- tests/QueryApiTest.cpp - CountOptions entry point contract --------===//
//
// The unified options-taking entry point (omega/Omega.h) is re-entrant:
// a query's CountOptions translate into a QueryContext installed for the
// query's duration, so knobs apply per query (never to process state) and
// stats are a per-query block (never a racy global delta).  These tests
// pin the contract: options-configured counts match the plain pipeline
// textually, nested/sequential queries don't leak stats into each other,
// and countBatch is element-wise isolated.
//
//===----------------------------------------------------------------------===//

#include "FuzzGen.h"

#include "counting/Summation.h"
#include "omega/Omega.h"
#include "presburger/Parser.h"
#include "presburger/Var.h"
#include "support/QueryContext.h"
#include "support/Trace.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

using namespace omega;

namespace {

/// Baseline: the plain two-argument pipeline entry (no options, no
/// context), from reset state.
std::string plainCount(const Formula &F, const VarSet &Vars) {
  clearConjunctCache();
  resetWildcardState();
  PiecewiseValue V = countSolutions(F, Vars);
  return V.toString();
}

/// Options path under the given knobs, from reset state.  Runs inside a
/// deliberately *different* enclosing context to prove the query's own
/// options win over whatever environment it nests in.
std::string optionsCount(const Formula &F, const VarSet &Vars,
                         unsigned Workers, bool Cache) {
  clearConjunctCache();
  resetWildcardState();
  QueryContext Enclosing;
  Enclosing.Workers = Workers ? 0 : 2;
  Enclosing.CacheEnabled = !Cache;
  QueryContextScope Scope(Enclosing);
  CountOptions CO;
  CO.Workers = Workers;
  CO.CacheEnabled = Cache;
  CountResult CR = countSolutions(F, Vars, CO);
  EXPECT_TRUE(CR.Status == CountStatus::Exact ||
              CR.Status == CountStatus::Unbounded);
  EXPECT_EQ(CR.exact(), !CR.Value.isUnbounded());
  return CR.Value.toString();
}

TEST(QueryApi, DifferentialFuzzCorpus) {
  struct Config {
    unsigned Workers;
    bool Cache;
  };
  const Config Configs[] = {{0, true}, {4, true}, {4, false}};

  fuzz::Generator Gen(/*Seed=*/23);
  for (int Case = 0; Case < 30; ++Case) {
    fuzz::FuzzCase FC = Gen.next();
    SCOPED_TRACE("fuzz case " + std::to_string(Case) + ": " + FC.Text);
    ParseResult R = parseFormula(FC.Text);
    ASSERT_TRUE(R) << R.Error;
    VarSet Vars(FC.Vars.begin(), FC.Vars.end());
    std::string Plain = plainCount(*R.Value, Vars);
    for (const Config &C : Configs) {
      std::string New = optionsCount(*R.Value, Vars, C.Workers, C.Cache);
      EXPECT_EQ(New, Plain)
          << "workers=" << C.Workers << " cache=" << C.Cache << " diverged";
    }
  }
}

TEST(QueryApi, SumPolynomialDifferential) {
  ParseResult R = parseFormula("1 <= i <= n && i <= j <= n");
  ASSERT_TRUE(R) << R.Error;
  VarSet Vars{"i", "j"};
  QuasiPolynomial X = QuasiPolynomial::variable("i");

  clearConjunctCache();
  resetWildcardState();
  std::string Plain = sumOverFormula(*R.Value, Vars, X).toString();

  clearConjunctCache();
  resetWildcardState();
  CountResult CR = sumPolynomial(*R.Value, Vars, X);
  EXPECT_TRUE(CR.exact());
  EXPECT_EQ(CR.Value.toString(), Plain);
}

TEST(QueryApi, BudgetedDifferential) {
  // Two clauses against a one-clause budget: both paths must degrade to
  // the same certified bounds, not just the same status.
  ParseResult R = parseFormula("1 <= i <= 10 || 20 <= i <= 24");
  ASSERT_TRUE(R) << R.Error;
  VarSet Vars{"i"};
  auto Budget = EffortBudget::parse("clauses=1");
  ASSERT_TRUE(Budget.ok());

  clearConjunctCache();
  resetWildcardState();
  BudgetedCount Legacy = countSolutionsBudgeted(*R.Value, Vars, *Budget);

  clearConjunctCache();
  resetWildcardState();
  CountOptions CO;
  CO.Budget = *Budget;
  CountResult CR = countSolutions(*R.Value, Vars, CO);

  ASSERT_EQ(Legacy.Status, CountStatus::Bounded);
  EXPECT_EQ(CR.Status, Legacy.Status);
  EXPECT_EQ(CR.TrippedLimit, Legacy.TrippedLimit);
  EXPECT_EQ(CR.Lower.toString(), Legacy.Lower.toString());
  EXPECT_EQ(CR.Upper.toString(), Legacy.Upper.toString());

  // A generous budget through the options path stays exact.
  auto Big = EffortBudget::parse("clauses=64");
  ASSERT_TRUE(Big.ok());
  clearConjunctCache();
  resetWildcardState();
  CountOptions CO2;
  CO2.Budget = *Big;
  CountResult Exact = countSolutions(*R.Value, Vars, CO2);
  EXPECT_TRUE(Exact.exact());
  EXPECT_EQ(Exact.Value.toString(), "(15)");
  EXPECT_TRUE(Exact.TrippedLimit.empty());
}

TEST(QueryApi, StatsAreAPerQueryDelta) {
  ParseResult R = parseFormula("1 <= i <= n && i <= j <= n");
  ASSERT_TRUE(R) << R.Error;
  VarSet Vars{"i", "j"};
  CountOptions CO;
  CO.CollectStats = true;

  // Two identical serial queries from reset state: each delta covers only
  // its own query, so the two snapshots agree even though the cumulative
  // process counters doubled.
  clearConjunctCache();
  resetWildcardState();
  CountResult First = countSolutions(*R.Value, Vars, CO);
  clearConjunctCache();
  resetWildcardState();
  CountResult Second = countSolutions(*R.Value, Vars, CO);

  EXPECT_GT(First.Stats.FeasibilityTests, 0u);
  EXPECT_EQ(First.Stats.FeasibilityTests, Second.Stats.FeasibilityTests);
  EXPECT_EQ(First.Stats.ProjectionCalls, Second.Stats.ProjectionCalls);
  EXPECT_EQ(First.Stats.CacheMisses, Second.Stats.CacheMisses);

  // Stats off: the snapshot stays zeroed rather than leaking totals.
  CountOptions Off;
  CountResult Plain = countSolutions(*R.Value, Vars, Off);
  EXPECT_EQ(Plain.Stats.FeasibilityTests, 0u);
}

TEST(QueryApi, StatsFoldIntoEnclosingCollector) {
  // A tool- or server-level context with a stats block sees the work of
  // queries nested beneath it — per-query isolation must not hide work
  // from aggregate observability.
  ParseResult R = parseFormula("1 <= i <= n && i <= j <= n");
  ASSERT_TRUE(R) << R.Error;
  VarSet Vars{"i", "j"};

  QueryStatsBlock Outer;
  QueryContext Ctx;
  Ctx.Stats = &Outer;
  QueryContextScope Scope(Ctx);

  clearConjunctCache();
  resetWildcardState();
  CountOptions CO;
  CO.CollectStats = true;
  CountResult CR = countSolutions(*R.Value, Vars, CO);
  EXPECT_GT(CR.Stats.FeasibilityTests, 0u);
  EXPECT_EQ(snapshotQueryStats(Outer).FeasibilityTests,
            CR.Stats.FeasibilityTests)
      << "per-query block did not fold into the enclosing collector";
}

TEST(QueryApi, CountBatchIsolatesStatsPerElement) {
  // Three queries of very different cost in one batch: each result's stats
  // delta must cover exactly its own query.  The two identical bookend
  // queries pin that: with the cache cleared between nothing, the third
  // query hits what the first populated, so equality of the *first* and a
  // solo rerun (plus first > third misses) proves isolation better than
  // any smoke check.
  ParseResult Small = parseFormula("1 <= i <= 4");
  ParseResult Big = parseFormula("1 <= i <= n && i <= j <= n && 2*i <= 3*j");
  ASSERT_TRUE(Small) << Small.Error;
  ASSERT_TRUE(Big) << Big.Error;

  std::vector<CountQuery> Queries(3);
  Queries[0].F = *Big.Value;
  Queries[0].Vars = {"i", "j"};
  Queries[0].Opts.CollectStats = true;
  Queries[1].F = *Small.Value;
  Queries[1].Vars = {"i"};
  Queries[1].Opts.CollectStats = true;
  Queries[2] = Queries[0];

  clearConjunctCache();
  resetWildcardState();
  std::vector<CountResult> Results = countBatch(Queries);
  ASSERT_EQ(Results.size(), 3u);
  for (const CountResult &CR : Results)
    EXPECT_TRUE(CR.exact()) << CR.Err.toString();

  // Element-wise answers match solo runs.
  clearConjunctCache();
  resetWildcardState();
  CountResult Solo = countSolutions(*Big.Value, {"i", "j"}, Queries[0].Opts);
  EXPECT_EQ(Results[0].Value.toString(), Solo.Value.toString());
  EXPECT_EQ(Results[2].Value.toString(), Solo.Value.toString());

  // Stats are per element: the big queries did strictly more work than the
  // tiny one, and the first big query's delta equals the solo run's (the
  // small query in between contributed nothing to it).
  EXPECT_EQ(Results[0].Stats.FeasibilityTests, Solo.Stats.FeasibilityTests);
  EXPECT_LT(Results[1].Stats.FeasibilityTests,
            Results[0].Stats.FeasibilityTests);
  // The third element re-ran the same formula against the batch-warm cache:
  // its misses cannot exceed the cold first element's.
  EXPECT_LE(Results[2].Stats.CacheMisses, Results[0].Stats.CacheMisses);
}

TEST(QueryApi, TraceHandleCapturesTheQuery) {
  ParseResult R = parseFormula(
      "exists(b: 0 <= 3*b - a <= 7 && 1 <= a - 2*b <= 5)");
  ASSERT_TRUE(R) << R.Error;
  CountOptions CO;
  CO.CollectTrace = true;
  clearConjunctCache();
  resetWildcardState();
  CountResult CR = countSolutions(*R.Value, VarSet{"a"}, CO);
  EXPECT_TRUE(CR.exact());
  ASSERT_TRUE(CR.Trace);
  EXPECT_FALSE(tracingEnabled()) << "query left the process tracing";
  EXPECT_FALSE(CR.Trace->Spans.empty());
  bool SawSimplify = false;
  for (const TraceSpanRecord &S : CR.Trace->Spans)
    SawSimplify |= std::string(S.Name) == "simplify";
  EXPECT_TRUE(SawSimplify);

  // Without the flag there is no handle and no session left behind.
  CountOptions Off;
  CountResult Plain = countSolutions(*R.Value, VarSet{"a"}, Off);
  EXPECT_FALSE(Plain.Trace);
  EXPECT_FALSE(tracingEnabled());
}

TEST(QueryApi, OutcomeMapsStatusAndErrors) {
  ParseResult R = parseFormula("1 <= i <= 4");
  ASSERT_TRUE(R) << R.Error;
  CountResult CR = countSolutions(*R.Value, VarSet{"i"}, CountOptions{});
  EXPECT_EQ(CR.outcome(), QueryOutcome::Exact);
  EXPECT_EQ(queryOutcomeExitCode(CR.outcome()), 0);

  // Budget exhaustion with bounds is an answer; the outcome says so.
  ParseResult Two = parseFormula("1 <= i <= 10 || 20 <= i <= 24");
  ASSERT_TRUE(Two) << Two.Error;
  CountOptions CO;
  auto Budget = EffortBudget::parse("clauses=1");
  ASSERT_TRUE(Budget.ok());
  CO.Budget = *Budget;
  CountResult Bounded = countSolutions(*Two.Value, VarSet{"i"}, CO);
  ASSERT_EQ(Bounded.Status, CountStatus::Bounded);
  EXPECT_EQ(Bounded.outcome(), QueryOutcome::Bounded);
  EXPECT_EQ(queryOutcomeExitCode(Bounded.outcome()), 0);

  // Transient service conditions sit in their own exit-code band.
  EXPECT_EQ(queryOutcomeExitCode(QueryOutcome::Overloaded), 75);
  EXPECT_EQ(queryOutcomeExitCode(QueryOutcome::ShuttingDown), 75);
  EXPECT_EQ(queryOutcomeExitCode(QueryOutcome::MalformedFrame), 1);
}

} // namespace
