//===- tests/QueryApiTest.cpp - CountOptions entry point differential ----===//
//
// The unified options-taking entry point (omega/Omega.h) must be a pure
// repackaging of the legacy global-knob API: for any formula and any knob
// setting, countSolutions(F, Vars, Opts) returns the *textually* identical
// answer to configuring the process globals by hand — and it must restore
// those globals on return, so a query nested inside legacy-configured code
// is invisible to it.
//
//===----------------------------------------------------------------------===//

#include "FuzzGen.h"

#include "counting/Summation.h"
#include "omega/Omega.h"
#include "presburger/Parser.h"
#include "presburger/Var.h"
#include "support/ThreadPool.h"
#include "support/Trace.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

using namespace omega;

namespace {

constexpr size_t kDefaultCap = size_t(1) << 14;

/// Legacy path: configure the process globals, reset, count.
std::string legacyCount(const Formula &F, const VarSet &Vars,
                        unsigned Workers, size_t Cap) {
  setWorkerCount(Workers);
  setConjunctCacheCapacity(Cap);
  clearConjunctCache();
  resetWildcardState();
  PiecewiseValue V = countSolutions(F, Vars);
  setWorkerCount(0);
  setConjunctCacheCapacity(kDefaultCap);
  return V.toString();
}

/// New path: identical knobs via CountOptions, with the process globals
/// deliberately parked at *different* values to prove the options win.
std::string optionsCount(const Formula &F, const VarSet &Vars,
                         unsigned Workers, size_t Cap) {
  setWorkerCount(Workers ? 0 : 2);
  setConjunctCacheCapacity(Cap ? 0 : kDefaultCap);
  clearConjunctCache();
  resetWildcardState();
  CountOptions CO;
  CO.Workers = Workers;
  CO.CacheEnabled = Cap > 0;
  CO.CacheCapacity = Cap;
  CountResult CR = countSolutions(F, Vars, CO);
  EXPECT_TRUE(CR.Status == CountStatus::Exact ||
              CR.Status == CountStatus::Unbounded);
  EXPECT_EQ(CR.exact(), !CR.Value.isUnbounded());
  // The parked globals must be back untouched.
  EXPECT_EQ(workerCount(), Workers ? 0u : 2u);
  EXPECT_EQ(conjunctCacheCapacity(), Cap ? 0u : kDefaultCap);
  setWorkerCount(0);
  setConjunctCacheCapacity(kDefaultCap);
  return CR.Value.toString();
}

TEST(QueryApi, DifferentialFuzzCorpus) {
  struct Config {
    unsigned Workers;
    size_t Cap;
  };
  const Config Configs[] = {{0, kDefaultCap}, {4, kDefaultCap}, {4, 0}};

  fuzz::Generator Gen(/*Seed=*/23);
  for (int Case = 0; Case < 30; ++Case) {
    fuzz::FuzzCase FC = Gen.next();
    SCOPED_TRACE("fuzz case " + std::to_string(Case) + ": " + FC.Text);
    ParseResult R = parseFormula(FC.Text);
    ASSERT_TRUE(R) << R.Error;
    VarSet Vars(FC.Vars.begin(), FC.Vars.end());
    for (const Config &C : Configs) {
      std::string Legacy = legacyCount(*R.Value, Vars, C.Workers, C.Cap);
      std::string New = optionsCount(*R.Value, Vars, C.Workers, C.Cap);
      EXPECT_EQ(New, Legacy)
          << "workers=" << C.Workers << " cache=" << C.Cap << " diverged";
    }
  }
}

TEST(QueryApi, SumPolynomialDifferential) {
  ParseResult R = parseFormula("1 <= i <= n && i <= j <= n");
  ASSERT_TRUE(R) << R.Error;
  VarSet Vars{"i", "j"};
  QuasiPolynomial X = QuasiPolynomial::variable("i");

  clearConjunctCache();
  resetWildcardState();
  std::string Legacy = sumOverFormula(*R.Value, Vars, X).toString();

  clearConjunctCache();
  resetWildcardState();
  CountResult CR = sumPolynomial(*R.Value, Vars, X);
  EXPECT_TRUE(CR.exact());
  EXPECT_EQ(CR.Value.toString(), Legacy);
}

TEST(QueryApi, BudgetedDifferential) {
  // Two clauses against a one-clause budget: both paths must degrade to
  // the same certified bounds, not just the same status.
  ParseResult R = parseFormula("1 <= i <= 10 || 20 <= i <= 24");
  ASSERT_TRUE(R) << R.Error;
  VarSet Vars{"i"};
  auto Budget = EffortBudget::parse("clauses=1");
  ASSERT_TRUE(Budget.ok());

  clearConjunctCache();
  resetWildcardState();
  BudgetedCount Legacy = countSolutionsBudgeted(*R.Value, Vars, *Budget);

  clearConjunctCache();
  resetWildcardState();
  CountOptions CO;
  CO.Budget = *Budget;
  CountResult CR = countSolutions(*R.Value, Vars, CO);

  ASSERT_EQ(Legacy.Status, CountStatus::Bounded);
  EXPECT_EQ(CR.Status, Legacy.Status);
  EXPECT_EQ(CR.TrippedLimit, Legacy.TrippedLimit);
  EXPECT_EQ(CR.Lower.toString(), Legacy.Lower.toString());
  EXPECT_EQ(CR.Upper.toString(), Legacy.Upper.toString());

  // A generous budget through the options path stays exact.
  auto Big = EffortBudget::parse("clauses=64");
  ASSERT_TRUE(Big.ok());
  clearConjunctCache();
  resetWildcardState();
  CountOptions CO2;
  CO2.Budget = *Big;
  CountResult Exact = countSolutions(*R.Value, Vars, CO2);
  EXPECT_TRUE(Exact.exact());
  EXPECT_EQ(Exact.Value.toString(), "(15)");
  EXPECT_TRUE(Exact.TrippedLimit.empty());
}

TEST(QueryApi, StatsAreAPerQueryDelta) {
  ParseResult R = parseFormula("1 <= i <= n && i <= j <= n");
  ASSERT_TRUE(R) << R.Error;
  VarSet Vars{"i", "j"};
  CountOptions CO;
  CO.CollectStats = true;

  // Two identical serial queries from reset state: each delta covers only
  // its own query, so the two snapshots agree even though the cumulative
  // process counters doubled.
  clearConjunctCache();
  resetWildcardState();
  CountResult First = countSolutions(*R.Value, Vars, CO);
  clearConjunctCache();
  resetWildcardState();
  CountResult Second = countSolutions(*R.Value, Vars, CO);

  EXPECT_GT(First.Stats.FeasibilityTests, 0u);
  EXPECT_EQ(First.Stats.FeasibilityTests, Second.Stats.FeasibilityTests);
  EXPECT_EQ(First.Stats.ProjectionCalls, Second.Stats.ProjectionCalls);
  EXPECT_EQ(First.Stats.CacheMisses, Second.Stats.CacheMisses);

  // Stats off: the snapshot stays zeroed rather than leaking totals.
  CountOptions Off;
  CountResult Plain = countSolutions(*R.Value, Vars, Off);
  EXPECT_EQ(Plain.Stats.FeasibilityTests, 0u);
}

TEST(QueryApi, TraceHandleCapturesTheQuery) {
  ParseResult R = parseFormula(
      "exists(b: 0 <= 3*b - a <= 7 && 1 <= a - 2*b <= 5)");
  ASSERT_TRUE(R) << R.Error;
  CountOptions CO;
  CO.CollectTrace = true;
  clearConjunctCache();
  resetWildcardState();
  CountResult CR = countSolutions(*R.Value, VarSet{"a"}, CO);
  EXPECT_TRUE(CR.exact());
  ASSERT_TRUE(CR.Trace);
  EXPECT_FALSE(tracingEnabled()) << "query left the process tracing";
  EXPECT_FALSE(CR.Trace->Spans.empty());
  bool SawSimplify = false;
  for (const TraceSpanRecord &S : CR.Trace->Spans)
    SawSimplify |= std::string(S.Name) == "simplify";
  EXPECT_TRUE(SawSimplify);

  // Without the flag there is no handle and no session left behind.
  CountOptions Off;
  CountResult Plain = countSolutions(*R.Value, VarSet{"a"}, Off);
  EXPECT_FALSE(Plain.Trace);
  EXPECT_FALSE(tracingEnabled());
}

} // namespace
