//===- tests/BadInputCorpusTest.cpp - Malformed inputs never abort -------===//
//
// Sweeps tests/corpus/bad/*.presburger — truncated tokens, unbalanced
// quantifiers, overflow-size literals, empty clauses, broken directives —
// asserting every file yields a recoverable diagnostic (from the file
// reader or the parser) and never a process abort.  The sweep runs at
// worker counts 0 and 4 so both the serial and OMEGA_PARALLEL
// configurations exercise the same corpus.
//
//===----------------------------------------------------------------------===//

#include "presburger/Parser.h"
#include "support/Budget.h"
#include "support/QueryContext.h"
#include "tools/FormulaFile.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <string>
#include <vector>

using namespace omega;

namespace {

std::vector<std::string> corpusFiles() {
  std::vector<std::string> Out;
  for (const auto &Entry :
       std::filesystem::directory_iterator(CORPUS_BAD_DIR))
    if (Entry.path().extension() == ".presburger")
      Out.push_back(Entry.path().string());
  std::sort(Out.begin(), Out.end());
  return Out;
}

/// Reads and parses one corpus file the way the tools do, under a
/// coefficient-width budget so oversized literals are rejected at parse
/// time.  Returns the diagnostic; empty means everything (wrongly)
/// succeeded.
std::string diagnoseFile(const std::string &Path) {
  FormulaFile In;
  std::string Err;
  if (!readFormulaFile(Path, In, Err))
    return Err;
  EffortBudget B;
  B.MaxCoefficientBits = 64;
  BudgetScope Scope(std::make_shared<BudgetState>(B));
  ParseResult R = parseFormula(In.FormulaText);
  if (!R)
    return R.Error;
  return "";
}

TEST(BadInputCorpusTest, CorpusIsNonEmpty) {
  EXPECT_GE(corpusFiles().size(), 8u);
}

TEST(BadInputCorpusTest, EveryFileYieldsRecoverableDiagnostic) {
  for (unsigned Workers : {0u, 4u}) {
    QueryContext Ctx;
    Ctx.Workers = Workers;
    QueryContextScope Scope(Ctx);
    for (const std::string &Path : corpusFiles()) {
      std::string Diag = diagnoseFile(Path);
      EXPECT_FALSE(Diag.empty())
          << Path << " produced no diagnostic at " << Workers << " workers";
    }
  }
}

TEST(BadInputCorpusTest, DirectiveDiagnosticsCarryLineNumbers) {
  FormulaFile In;
  std::string Err;
  ASSERT_FALSE(readFormulaFile(
      std::string(CORPUS_BAD_DIR) + "/bad_box.presburger", In, Err));
  EXPECT_NE(Err.find("line 2"), std::string::npos) << Err;
}

TEST(BadInputCorpusTest, ParseDiagnosticsCarryOffsets) {
  FormulaFile In;
  std::string Err;
  ASSERT_TRUE(readFormulaFile(
      std::string(CORPUS_BAD_DIR) + "/truncated_token.presburger", In, Err))
      << Err;
  ParseResult R = parseFormula(In.FormulaText);
  ASSERT_FALSE(R);
  EXPECT_NE(R.Error.find("offset"), std::string::npos) << R.Error;
}

} // namespace
