//===- tests/ServerTest.cpp - omegad server subsystem tests --------------===//
//
// Four layers of coverage for src/server/: the wire protocol (round-trip,
// hostile-input rejection at every truncation point), framed socket I/O,
// the RequestQueue admission policy, and a real Server on a temp AF_UNIX
// socket — concurrent clients receiving bit-identical answers vs direct
// countSolutions, malformed-frame rejection that leaves the server
// serving, the load-shed and reject paths under saturation, and graceful
// shutdown draining an admitted query.  Runs under the same ASan/TSan
// matrix as everything else (ci.sh), which is where the concurrency
// claims earn their keep.
//
//===----------------------------------------------------------------------===//

#include "FuzzGen.h"

#include "omega/Omega.h"
#include "presburger/Parser.h"
#include "server/Protocol.h"
#include "server/RequestQueue.h"
#include "server/Server.h"
#include "server/Session.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <string>
#include <sys/socket.h>
#include <sys/un.h>
#include <thread>
#include <unistd.h>
#include <vector>

using namespace omega;
using namespace omega::server;

namespace {

//===----------------------------------------------------------------------===//
// Protocol: pure encode/decode
//===----------------------------------------------------------------------===//

CountRequestMsg sampleRequest() {
  CountRequestMsg M;
  M.Formula = "1 <= i && i <= 10 && 1 <= j && j <= i";
  M.Vars = {"i", "j"};
  M.Workers = 4;
  M.Backend = static_cast<uint8_t>(BackendKind::Auto);
  M.CacheEnabled = false;
  M.CollectStats = true;
  M.Budget = "clauses=64,splinters=8";
  return M;
}

TEST(Protocol, CountRequestRoundTrip) {
  CountRequestMsg M = sampleRequest();
  std::vector<uint8_t> Bytes = encodeCountRequest(M);
  CountRequestMsg Out;
  ASSERT_TRUE(decodeCountRequest(Bytes, Out));
  EXPECT_EQ(Out.Formula, M.Formula);
  EXPECT_EQ(Out.Vars, M.Vars);
  EXPECT_EQ(Out.Workers, M.Workers);
  EXPECT_EQ(Out.Backend, M.Backend);
  EXPECT_EQ(Out.CacheEnabled, M.CacheEnabled);
  EXPECT_EQ(Out.CollectStats, M.CollectStats);
  EXPECT_EQ(Out.Budget, M.Budget);
}

TEST(Protocol, CountResponseRoundTrip) {
  CountResponseMsg M;
  M.Outcome = QueryOutcome::Bounded;
  M.Lower = "15";
  M.Upper = "15";
  M.ErrorText = "clauses=1";
  M.Backend = "pugh";
  M.StatsJson = "{\"schema\": 5}";
  std::vector<uint8_t> Bytes = encodeCountResponse(M);
  CountResponseMsg Out;
  ASSERT_TRUE(decodeCountResponse(Bytes, Out));
  EXPECT_EQ(Out.Outcome, M.Outcome);
  EXPECT_EQ(Out.Lower, M.Lower);
  EXPECT_EQ(Out.Upper, M.Upper);
  EXPECT_EQ(Out.ErrorText, M.ErrorText);
  EXPECT_EQ(Out.Backend, M.Backend);
  EXPECT_EQ(Out.StatsJson, M.StatsJson);
}

// Every proper prefix of a valid encoding must decode false — no read
// ever runs past the end of a short buffer (ASan checks the claim).
TEST(Protocol, EveryTruncationRejected) {
  std::vector<uint8_t> Bytes = encodeCountRequest(sampleRequest());
  for (size_t Len = 0; Len < Bytes.size(); ++Len) {
    std::vector<uint8_t> Cut(Bytes.begin(), Bytes.begin() + Len);
    CountRequestMsg Out;
    EXPECT_FALSE(decodeCountRequest(Cut, Out)) << "prefix length " << Len;
  }
}

TEST(Protocol, TrailingGarbageRejected) {
  std::vector<uint8_t> Bytes = encodeCountRequest(sampleRequest());
  Bytes.push_back(0);
  CountRequestMsg Out;
  EXPECT_FALSE(decodeCountRequest(Bytes, Out));
}

TEST(Protocol, HostileLengthsRejected) {
  // A var-count field claiming four billion entries must fail fast, not
  // loop or allocate.
  CountRequestMsg M = sampleRequest();
  std::vector<uint8_t> Bytes = encodeCountRequest(M);
  // Corrupt the var-count u32 that follows the formula string.
  size_t VarCountAt = 1 + 4 + M.Formula.size();
  ASSERT_LT(VarCountAt + 4, Bytes.size());
  Bytes[VarCountAt] = Bytes[VarCountAt + 1] = Bytes[VarCountAt + 2] =
      Bytes[VarCountAt + 3] = 0xFF;
  CountRequestMsg Out;
  EXPECT_FALSE(decodeCountRequest(Bytes, Out));

  MsgType T;
  EXPECT_FALSE(peekType({}, T));
  EXPECT_FALSE(peekType({0}, T));
  EXPECT_FALSE(peekType({99}, T));
}

TEST(Protocol, WrongTypeByteRejected) {
  std::vector<uint8_t> Bytes = encodeCountRequest(sampleRequest());
  Bytes[0] = static_cast<uint8_t>(MsgType::CountResponse);
  CountRequestMsg Out;
  EXPECT_FALSE(decodeCountRequest(Bytes, Out));
}

//===----------------------------------------------------------------------===//
// Framed socket I/O over a socketpair
//===----------------------------------------------------------------------===//

struct SocketPair {
  int A = -1, B = -1;
  SocketPair() {
    int Fds[2];
    if (::socketpair(AF_UNIX, SOCK_STREAM, 0, Fds) == 0) {
      A = Fds[0];
      B = Fds[1];
    }
  }
  ~SocketPair() {
    if (A >= 0)
      ::close(A);
    if (B >= 0)
      ::close(B);
  }
};

TEST(Framing, RoundTripAndCleanEof) {
  SocketPair SP;
  ASSERT_GE(SP.A, 0);
  std::vector<uint8_t> Sent = encodeEmpty(MsgType::Ping);
  ASSERT_EQ(writeFrame(SP.A, Sent), IoStatus::Ok);
  std::vector<uint8_t> Got;
  ASSERT_EQ(readFrame(SP.B, Got, 1000), IoStatus::Ok);
  EXPECT_EQ(Got, Sent);
  ::close(SP.A);
  SP.A = -1;
  EXPECT_EQ(readFrame(SP.B, Got, 1000), IoStatus::Eof);
}

TEST(Framing, OversizedLengthRejectedBeforeAllocation) {
  SocketPair SP;
  ASSERT_GE(SP.A, 0);
  // 0xFFFFFFFF little-endian: a length prefix promising 4 GiB.
  const uint8_t Huge[4] = {0xFF, 0xFF, 0xFF, 0xFF};
  ASSERT_EQ(::write(SP.A, Huge, 4), 4);
  std::vector<uint8_t> Got;
  EXPECT_EQ(readFrame(SP.B, Got, 1000), IoStatus::TooBig);
}

TEST(Framing, TruncatedFrameIsErrorNotEof) {
  SocketPair SP;
  ASSERT_GE(SP.A, 0);
  // Promise 100 bytes, deliver 3, close.
  const uint8_t Header[4] = {100, 0, 0, 0};
  ASSERT_EQ(::write(SP.A, Header, 4), 4);
  ASSERT_EQ(::write(SP.A, Header, 3), 3);
  ::close(SP.A);
  SP.A = -1;
  std::vector<uint8_t> Got;
  EXPECT_EQ(readFrame(SP.B, Got, 1000), IoStatus::Error);
}

TEST(Framing, TimeoutWhenPeerSilent) {
  SocketPair SP;
  ASSERT_GE(SP.A, 0);
  std::vector<uint8_t> Got;
  EXPECT_EQ(readFrame(SP.B, Got, 50), IoStatus::Timeout);
}

//===----------------------------------------------------------------------===//
// Admission control
//===----------------------------------------------------------------------===//

TEST(Admission, RunShedRejectThresholds) {
  RequestQueue Q(/*Soft=*/2, /*Hard=*/4);
  EXPECT_EQ(Q.admit(), Admission::Run);
  EXPECT_EQ(Q.admit(), Admission::Run);
  EXPECT_EQ(Q.admit(), Admission::Shed);
  EXPECT_EQ(Q.admit(), Admission::Shed);
  EXPECT_EQ(Q.admit(), Admission::Reject);
  EXPECT_EQ(Q.inFlight(), 4u);
  Q.release();
  EXPECT_EQ(Q.admit(), Admission::Shed);
  EXPECT_EQ(Q.admitted(), 2u);
  EXPECT_EQ(Q.shedded(), 3u);
  EXPECT_EQ(Q.rejected(), 1u);
}

TEST(Admission, HardZeroRejectsEverything) {
  RequestQueue Q(0, 0);
  EXPECT_EQ(Q.admit(), Admission::Reject);
  EXPECT_EQ(Q.rejected(), 1u);
}

TEST(Admission, ClampBudgetTakesTighterKnobs) {
  EffortBudget Client;
  Client.MaxDnfClauses = 16;
  Client.MaxRecursionDepth = 0; // Unlimited.
  EffortBudget Shed;
  Shed.MaxDnfClauses = 64;
  Shed.MaxRecursionDepth = 24;
  EffortBudget Out = clampBudget(Client, Shed);
  EXPECT_EQ(Out.MaxDnfClauses, 16u) << "client was tighter";
  EXPECT_EQ(Out.MaxRecursionDepth, 24u) << "shed limit beats unlimited";
  EXPECT_EQ(Out.MaxCoefficientBits, 0u) << "both unlimited stays unlimited";
}

//===----------------------------------------------------------------------===//
// End-to-end against a live Server
//===----------------------------------------------------------------------===//

std::string uniqueSocketPath() {
  static std::atomic<unsigned> Counter{0};
  return "/tmp/omegad-test-" + std::to_string(::getpid()) + "-" +
         std::to_string(Counter.fetch_add(1)) + ".sock";
}

int connectTo(const std::string &Path) {
  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0)
    return -1;
  sockaddr_un Addr{};
  Addr.sun_family = AF_UNIX;
  std::memcpy(Addr.sun_path, Path.c_str(), Path.size() + 1);
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) < 0) {
    ::close(Fd);
    return -1;
  }
  return Fd;
}

/// Sends one request and reads one decoded response; fails the test on
/// any transport-level problem.
CountResponseMsg roundTrip(int Fd, const CountRequestMsg &M) {
  CountResponseMsg R;
  EXPECT_EQ(writeFrame(Fd, encodeCountRequest(M)), IoStatus::Ok);
  std::vector<uint8_t> Payload;
  EXPECT_EQ(readFrame(Fd, Payload, 60000), IoStatus::Ok);
  EXPECT_TRUE(decodeCountResponse(Payload, R));
  return R;
}

TEST(ServerEndToEnd, ConcurrentClientsBitIdentical) {
  // Expected answers computed in-process first, from the same corpus the
  // differential fuzz tests use.
  fuzz::Generator Gen(/*Seed=*/71);
  std::vector<CountRequestMsg> Requests;
  std::vector<std::string> Expected;
  for (int Case = 0; Case < 8; ++Case) {
    fuzz::FuzzCase FC = Gen.next();
    ParseResult PR = parseFormula(FC.Text);
    ASSERT_TRUE(PR) << PR.Error;
    VarSet Vars(FC.Vars.begin(), FC.Vars.end());
    CountResult CR = countSolutions(*PR.Value, Vars, CountOptions{});
    ASSERT_NE(CR.Status, CountStatus::Error) << CR.Err.toString();
    CountRequestMsg M;
    M.Formula = FC.Text;
    M.Vars = FC.Vars;
    Requests.push_back(std::move(M));
    Expected.push_back(CR.Value.toString());
  }

  ServerOptions Opts;
  Opts.SocketPath = uniqueSocketPath();
  Opts.SoftInFlight = 8;
  Opts.HardInFlight = 32;
  Server S(Opts);
  std::string Err;
  ASSERT_TRUE(S.start(Err)) << Err;

  const unsigned Clients = 4;
  std::vector<std::thread> Threads;
  std::atomic<int> Failures{0};
  for (unsigned C = 0; C < Clients; ++C)
    Threads.emplace_back([&] {
      int Fd = connectTo(Opts.SocketPath);
      if (Fd < 0) {
        ++Failures;
        return;
      }
      std::vector<uint8_t> Payload;
      for (size_t I = 0; I < Requests.size(); ++I) {
        if (writeFrame(Fd, encodeCountRequest(Requests[I])) !=
                IoStatus::Ok ||
            readFrame(Fd, Payload, 60000) != IoStatus::Ok) {
          ++Failures;
          break;
        }
        CountResponseMsg R;
        if (!decodeCountResponse(Payload, R) ||
            !queryOutcomeIsAnswer(R.Outcome) || R.Value != Expected[I]) {
          ++Failures;
          break;
        }
      }
      ::close(Fd);
    });
  for (std::thread &T : Threads)
    T.join();
  EXPECT_EQ(Failures.load(), 0)
      << "some client saw a transport failure or a non-identical answer";
  S.stop();
}

TEST(ServerEndToEnd, MalformedFrameRejectedServerSurvives) {
  ServerOptions Opts;
  Opts.SocketPath = uniqueSocketPath();
  Server S(Opts);
  std::string Err;
  ASSERT_TRUE(S.start(Err)) << Err;

  {
    // Garbage payload with a valid length prefix.
    int Fd = connectTo(Opts.SocketPath);
    ASSERT_GE(Fd, 0);
    std::vector<uint8_t> Junk = {static_cast<uint8_t>(MsgType::CountRequest),
                                 0xDE, 0xAD, 0xBE, 0xEF};
    ASSERT_EQ(writeFrame(Fd, Junk), IoStatus::Ok);
    std::vector<uint8_t> Payload;
    ASSERT_EQ(readFrame(Fd, Payload, 10000), IoStatus::Ok);
    CountResponseMsg R;
    ASSERT_TRUE(decodeCountResponse(Payload, R));
    EXPECT_EQ(R.Outcome, QueryOutcome::MalformedFrame);
    EXPECT_EQ(queryOutcomeExitCode(R.Outcome), 1);
    // The server drops the connection after a malformed frame.
    EXPECT_EQ(readFrame(Fd, Payload, 10000), IoStatus::Eof);
    ::close(Fd);
  }
  {
    // An oversized length prefix is answered then dropped likewise.
    int Fd = connectTo(Opts.SocketPath);
    ASSERT_GE(Fd, 0);
    const uint8_t Huge[4] = {0xFF, 0xFF, 0xFF, 0x7F};
    ASSERT_EQ(::write(Fd, Huge, 4), 4);
    std::vector<uint8_t> Payload;
    ASSERT_EQ(readFrame(Fd, Payload, 10000), IoStatus::Ok);
    CountResponseMsg R;
    ASSERT_TRUE(decodeCountResponse(Payload, R));
    EXPECT_EQ(R.Outcome, QueryOutcome::MalformedFrame);
    ::close(Fd);
  }
  {
    // A fresh connection still gets real answers: nothing aborted.
    int Fd = connectTo(Opts.SocketPath);
    ASSERT_GE(Fd, 0);
    CountRequestMsg M;
    M.Formula = "1 <= i && i <= 10";
    M.Vars = {"i"};
    CountResponseMsg R = roundTrip(Fd, M);
    EXPECT_EQ(R.Outcome, QueryOutcome::Exact);
    EXPECT_EQ(R.Value, "(10)");
    ::close(Fd);
  }
  S.stop();
}

TEST(ServerEndToEnd, ShedClampsToBoundedAnswer) {
  // Soft limit 0: every query runs shed.  The shed budget allows a single
  // DNF clause, so a two-clause union degrades to certified bounds.
  ServerOptions Opts;
  Opts.SocketPath = uniqueSocketPath();
  Opts.SoftInFlight = 0;
  Opts.HardInFlight = 4;
  Opts.ShedBudget = EffortBudget{};
  Opts.ShedBudget.MaxDnfClauses = 1;
  Server S(Opts);
  std::string Err;
  ASSERT_TRUE(S.start(Err)) << Err;

  int Fd = connectTo(Opts.SocketPath);
  ASSERT_GE(Fd, 0);
  CountRequestMsg M;
  M.Formula = "(1 <= i && i <= 10) || (20 <= i && i <= 24)";
  M.Vars = {"i"};
  CountResponseMsg R = roundTrip(Fd, M);
  EXPECT_EQ(R.Outcome, QueryOutcome::Bounded)
      << "shed budget should degrade the union to bounds, got "
      << queryOutcomeName(R.Outcome) << " " << R.ErrorText;
  EXPECT_FALSE(R.Lower.empty());
  EXPECT_FALSE(R.Upper.empty());
  ::close(Fd);

  std::string Stats = S.statsJson();
  EXPECT_NE(Stats.find("\"shed\":1"), std::string::npos) << Stats;
  S.stop();
}

TEST(ServerEndToEnd, HardLimitRejectsOverloaded) {
  ServerOptions Opts;
  Opts.SocketPath = uniqueSocketPath();
  Opts.SoftInFlight = 0;
  Opts.HardInFlight = 0; // Reject everything.
  Server S(Opts);
  std::string Err;
  ASSERT_TRUE(S.start(Err)) << Err;

  int Fd = connectTo(Opts.SocketPath);
  ASSERT_GE(Fd, 0);
  CountRequestMsg M;
  M.Formula = "1 <= i && i <= 5";
  M.Vars = {"i"};
  CountResponseMsg R = roundTrip(Fd, M);
  EXPECT_EQ(R.Outcome, QueryOutcome::Overloaded);
  EXPECT_EQ(queryOutcomeExitCode(R.Outcome), 75) << "EX_TEMPFAIL band";
  // The connection survives a rejection — only malformed input drops it.
  CountResponseMsg R2 = roundTrip(Fd, M);
  EXPECT_EQ(R2.Outcome, QueryOutcome::Overloaded);
  ::close(Fd);
  S.stop();
}

TEST(ServerEndToEnd, InputErrorsAreTypedResponses) {
  ServerOptions Opts;
  Opts.SocketPath = uniqueSocketPath();
  Server S(Opts);
  std::string Err;
  ASSERT_TRUE(S.start(Err)) << Err;
  int Fd = connectTo(Opts.SocketPath);
  ASSERT_GE(Fd, 0);

  CountRequestMsg M;
  M.Formula = "1 <= ";
  M.Vars = {"i"};
  EXPECT_EQ(roundTrip(Fd, M).Outcome, QueryOutcome::ParseError);

  M.Formula = "1 <= i && i <= 5";
  M.Vars.clear();
  EXPECT_EQ(roundTrip(Fd, M).Outcome, QueryOutcome::InvalidInput);

  M.Vars = {"i"};
  M.Budget = "frobs=3";
  EXPECT_EQ(roundTrip(Fd, M).Outcome, QueryOutcome::InvalidInput);

  M.Budget.clear();
  M.Backend = 99;
  EXPECT_EQ(roundTrip(Fd, M).Outcome, QueryOutcome::InvalidInput);

  // After all those diagnostics the connection still answers correctly.
  M.Backend = 0;
  CountResponseMsg R = roundTrip(Fd, M);
  EXPECT_EQ(R.Outcome, QueryOutcome::Exact);
  EXPECT_EQ(R.Value, "(5)");
  ::close(Fd);
  S.stop();
}

TEST(ServerEndToEnd, PingStatsAndPerClientCounters) {
  ServerOptions Opts;
  Opts.SocketPath = uniqueSocketPath();
  Server S(Opts);
  std::string Err;
  ASSERT_TRUE(S.start(Err)) << Err;
  int Fd = connectTo(Opts.SocketPath);
  ASSERT_GE(Fd, 0);

  ASSERT_EQ(writeFrame(Fd, encodeEmpty(MsgType::Ping)), IoStatus::Ok);
  std::vector<uint8_t> Payload;
  ASSERT_EQ(readFrame(Fd, Payload, 10000), IoStatus::Ok);
  MsgType T;
  ASSERT_TRUE(peekType(Payload, T));
  EXPECT_EQ(T, MsgType::Pong);

  CountRequestMsg M;
  M.Formula = "1 <= i && i <= 7";
  M.Vars = {"i"};
  M.CollectStats = true;
  CountResponseMsg R = roundTrip(Fd, M);
  EXPECT_EQ(R.Outcome, QueryOutcome::Exact);
  EXPECT_NE(R.StatsJson.find("\"schema\": 5"), std::string::npos)
      << "per-query stats delta should be schema-5 JSON: " << R.StatsJson;

  ASSERT_EQ(writeFrame(Fd, encodeEmpty(MsgType::StatsRequest)),
            IoStatus::Ok);
  ASSERT_EQ(readFrame(Fd, Payload, 10000), IoStatus::Ok);
  std::string Json;
  ASSERT_TRUE(decodeStatsResponse(Payload, Json));
  EXPECT_NE(Json.find("\"pipeline\":"), std::string::npos) << Json;
  EXPECT_NE(Json.find("\"server\":"), std::string::npos) << Json;
  EXPECT_NE(Json.find("\"clients\":[{\"id\":1,\"requests\":1"),
            std::string::npos)
      << "per-client counters missing: " << Json;
  ::close(Fd);
  S.stop();
}

TEST(ServerEndToEnd, GracefulShutdownDrainsInFlight) {
  ServerOptions Opts;
  Opts.SocketPath = uniqueSocketPath();
  Server S(Opts);
  std::string Err;
  ASSERT_TRUE(S.start(Err)) << Err;

  int Fd = connectTo(Opts.SocketPath);
  ASSERT_GE(Fd, 0);
  CountRequestMsg M;
  // A multi-clause query with fan-out: enough work that admission is
  // observable before the answer lands.
  M.Formula = "(1 <= i && i <= 50 && 1 <= j && j <= i) || "
              "(60 <= i && i <= 90 && 1 <= j && j <= 40)";
  M.Vars = {"i", "j"};
  M.Workers = 2;
  ASSERT_EQ(writeFrame(Fd, encodeCountRequest(M)), IoStatus::Ok);

  // Wait until the query is admitted (the counter is monotonic, so this
  // cannot miss a fast query), then begin shutdown while it may still be
  // running.
  const auto Deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (S.statsJson().find("\"admitted\":1") == std::string::npos) {
    ASSERT_LT(std::chrono::steady_clock::now(), Deadline)
        << "query never admitted";
    std::this_thread::yield();
  }
  std::thread Stopper([&] { S.stop(); });

  // The admitted query must still deliver its full answer.
  std::vector<uint8_t> Payload;
  ASSERT_EQ(readFrame(Fd, Payload, 60000), IoStatus::Ok)
      << "shutdown dropped an in-flight query";
  CountResponseMsg R;
  ASSERT_TRUE(decodeCountResponse(Payload, R));
  EXPECT_EQ(R.Outcome, QueryOutcome::Exact);
  EXPECT_EQ(R.Value, "(2515)"); // 50*51/2 + 31*40.
  Stopper.join();
  ::close(Fd);

  // The socket is gone: the server really shut down.
  EXPECT_LT(connectTo(Opts.SocketPath), 0);
}

TEST(ServerEndToEnd, RequestsAfterDrainingAnswerShuttingDown) {
  ServerOptions Opts;
  Opts.SocketPath = uniqueSocketPath();
  Server S(Opts);
  std::string Err;
  ASSERT_TRUE(S.start(Err)) << Err;
  int Fd = connectTo(Opts.SocketPath);
  ASSERT_GE(Fd, 0);

  // Race one request against stop(): the only legal outcomes are a full
  // answer (decoded before draining) or a typed ShuttingDown — never a
  // hang, never an undecodable reply.
  std::thread Stopper([&] { S.stop(); });
  CountRequestMsg M;
  M.Formula = "1 <= i && i <= 5";
  M.Vars = {"i"};
  std::vector<uint8_t> Payload;
  if (writeFrame(Fd, encodeCountRequest(M)) == IoStatus::Ok &&
      readFrame(Fd, Payload, 60000) == IoStatus::Ok) {
    CountResponseMsg R;
    ASSERT_TRUE(decodeCountResponse(Payload, R));
    EXPECT_TRUE(R.Outcome == QueryOutcome::Exact ||
                R.Outcome == QueryOutcome::ShuttingDown)
        << queryOutcomeName(R.Outcome);
    if (R.Outcome == QueryOutcome::ShuttingDown)
      EXPECT_EQ(queryOutcomeExitCode(R.Outcome), 75);
  }
  // Else: the read side was already shut — an equally clean refusal.
  Stopper.join();
  ::close(Fd);
}

} // namespace
