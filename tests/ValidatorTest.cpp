//===- tests/ValidatorTest.cpp - analysis::Validator rule coverage -------===//
//
// Each test corrupts the IR in exactly one way and checks that the
// Validator reports that rule (and only at the expected severity), or that
// well-formed pipeline output is clean.
//
//===----------------------------------------------------------------------===//

#include "analysis/Validator.h"

#include "counting/Summation.h"
#include "omega/Omega.h"
#include "presburger/Parser.h"

#include <gtest/gtest.h>

using namespace omega;

namespace {

OverlapOracle omegaOracle() {
  return [](const Conjunct &A, const Conjunct &B) {
    return feasible(Conjunct::merge(A, B));
  };
}

ValidatorOptions normalizedOpts() {
  ValidatorOptions O;
  O.RequireNormalized = true;
  return O;
}

ValidatorOptions wildcardFreeOpts() {
  ValidatorOptions O;
  O.RequireWildcardFree = true;
  return O;
}

ValidatorOptions oracleOpts(bool RequireDisjoint = false) {
  ValidatorOptions O;
  O.RequireDisjoint = RequireDisjoint;
  O.Overlaps = omegaOracle();
  return O;
}

/// The full invariant set promised by simplify(Disjoint).
ValidatorOptions strictDnfOpts() {
  ValidatorOptions O = oracleOpts(/*RequireDisjoint=*/true);
  O.RequireWildcardFree = true;
  O.RequireNormalized = true;
  return O;
}

/// True iff some diagnostic carries \p Rule.
bool hasRule(const std::vector<Diagnostic> &Diags, const std::string &Rule) {
  for (const Diagnostic &D : Diags)
    if (D.Rule == Rule)
      return true;
  return false;
}

int errorCount(const std::vector<Diagnostic> &Diags) {
  int N = 0;
  for (const Diagnostic &D : Diags)
    if (D.Sev == Severity::Error)
      ++N;
  return N;
}

AffineExpr var(const std::string &N) { return AffineExpr::variable(N); }

//===----------------------------------------------------------------------===//
// Affine / Constraint rules
//===----------------------------------------------------------------------===//

TEST(Validator, CleanConstraintHasNoDiagnostics) {
  Validator V(normalizedOpts());
  V.checkConstraint(Constraint::ge(var("i") - 1), "t");
  EXPECT_TRUE(V.empty());
}

TEST(Validator, ReducedStrideIsClean) {
  Validator V(normalizedOpts());
  V.checkConstraint(Constraint::stride(BigInt(3), var("i")), "t");
  EXPECT_TRUE(V.empty());
}

TEST(Validator, EqNotGcdNormalized) {
  Validator V(normalizedOpts());
  V.checkConstraint(Constraint::eq(var("x") * BigInt(2) + AffineExpr(4)), "t");
  EXPECT_TRUE(hasRule(V.diagnostics(), "eq-not-gcd-normalized"));
  EXPECT_EQ(errorCount(V.diagnostics()), 1);
}

TEST(Validator, GeNotTightened) {
  Validator V(normalizedOpts());
  // 2x - 3 >= 0 tightens to x - 2 >= 0.
  V.checkConstraint(Constraint::ge(var("x") * BigInt(2) - AffineExpr(3)), "t");
  EXPECT_TRUE(hasRule(V.diagnostics(), "ge-not-tightened"));
}

TEST(Validator, StrideNotReduced) {
  Validator V(normalizedOpts());
  // 3 | x + 5 reduces to 3 | x + 2.
  V.checkConstraint(Constraint::stride(BigInt(3), var("x") + AffineExpr(5)),
                    "t");
  EXPECT_TRUE(hasRule(V.diagnostics(), "stride-not-reduced"));
}

TEST(Validator, UnsatisfiableConstraint) {
  Validator V(normalizedOpts());
  // 2x + 1 = 0 has no integer solution.
  V.checkConstraint(Constraint::eq(var("x") * BigInt(2) + AffineExpr(1)), "t");
  EXPECT_TRUE(hasRule(V.diagnostics(), "constraint-unsatisfiable"));
}

TEST(Validator, TrivialConstraint) {
  Validator V(normalizedOpts());
  V.checkConstraint(Constraint::ge(AffineExpr(7)), "t");
  EXPECT_TRUE(hasRule(V.diagnostics(), "trivial-constraint"));
}

TEST(Validator, NormalizedRulesAreOptIn) {
  Validator V; // Default options: structural rules only.
  V.checkConstraint(Constraint::eq(var("x") * BigInt(2) + AffineExpr(4)), "t");
  V.checkConstraint(Constraint::ge(AffineExpr(7)), "t");
  EXPECT_TRUE(V.empty());
}

//===----------------------------------------------------------------------===//
// Conjunct rules
//===----------------------------------------------------------------------===//

TEST(Validator, WildcardUndeclared) {
  Conjunct C;
  C.add(Constraint::ge(var("$999") - 1)); // Mentioned, never declared.
  Validator V;
  V.checkConjunct(C, "t");
  EXPECT_TRUE(hasRule(V.diagnostics(), "wildcard-undeclared"));
  EXPECT_TRUE(V.hasErrors());
}

TEST(Validator, PendingWildcardNamesAllowedMidPipeline) {
  // toDNF alpha-renames outer quantifier variables to `$` names that stay
  // free until the outer projection; AllowFreeWildcardNames models that.
  Conjunct C;
  C.add(Constraint::ge(var("$999") - 1));
  ValidatorOptions O;
  O.AllowFreeWildcardNames = true;
  Validator V(O);
  V.checkConjunct(C, "t");
  EXPECT_TRUE(V.empty());
}

TEST(Validator, WildcardUnusedIsWarning) {
  Conjunct C;
  C.addWildcard("$7");
  C.add(Constraint::ge(var("i")));
  Validator V;
  V.checkConjunct(C, "t");
  EXPECT_TRUE(hasRule(V.diagnostics(), "wildcard-unused"));
  EXPECT_FALSE(V.hasErrors());
}

TEST(Validator, WildcardForbidden) {
  Conjunct C;
  C.addWildcard("$7");
  C.add(Constraint::eq(var("i") - var("$7") * BigInt(2)));
  Validator V(wildcardFreeOpts());
  V.checkConjunct(C, "t");
  EXPECT_TRUE(hasRule(V.diagnostics(), "wildcard-forbidden"));
}

TEST(Validator, DuplicateConstraint) {
  Conjunct C;
  C.add(Constraint::ge(var("i") - 1));
  C.add(Constraint::ge(var("i") - 1));
  Validator V(normalizedOpts());
  V.checkConjunct(C, "t");
  EXPECT_TRUE(hasRule(V.diagnostics(), "duplicate-constraint"));
}

//===----------------------------------------------------------------------===//
// Formula rules
//===----------------------------------------------------------------------===//

TEST(Validator, CleanFormula) {
  Formula F = parseFormulaOrDie("exists(j: 1 <= j <= i) && i <= n");
  EXPECT_TRUE(validateFormula(F).empty());
}

TEST(Validator, QuantifierUnusedIsWarning) {
  Formula F = Formula::exists({"z"}, parseFormulaOrDie("1 <= i <= n"));
  std::vector<Diagnostic> Diags = validateFormula(F);
  EXPECT_TRUE(hasRule(Diags, "quantifier-unused"));
  EXPECT_EQ(errorCount(Diags), 0);
}

TEST(Validator, QuantifierShadowingIsWarning) {
  Formula Inner = Formula::exists({"j"}, parseFormulaOrDie("j = 2*i"));
  Formula F = Formula::exists({"j"},
                              parseFormulaOrDie("1 <= j <= n") && Inner);
  std::vector<Diagnostic> Diags = validateFormula(F);
  EXPECT_TRUE(hasRule(Diags, "quantifier-shadowing"));
  EXPECT_EQ(errorCount(Diags), 0);
}

//===----------------------------------------------------------------------===//
// DNF rules
//===----------------------------------------------------------------------===//

TEST(Validator, SimplifyOutputIsClean) {
  Formula F = parseFormulaOrDie(
      "(1 <= i,j <= n && 2*i <= 3*j) || (i = j && 0 <= i <= 2*n)");
  SimplifyOptions Opts;
  Opts.Disjoint = true;
  std::vector<Conjunct> D = simplify(F, Opts);
  std::vector<Diagnostic> Diags = validateDnf(D, strictDnfOpts());
  for (const Diagnostic &Diag : Diags)
    ADD_FAILURE() << Diag.toString();
}

TEST(Validator, InfeasibleClauseDetected) {
  Conjunct C;
  C.add(Constraint::ge(var("i") - 5));  // i >= 5
  C.add(Constraint::ge(-var("i") + 2)); // i <= 2
  std::vector<Diagnostic> Diags = validateDnf({C}, oracleOpts());
  EXPECT_TRUE(hasRule(Diags, "clause-infeasible"));
}

TEST(Validator, OverlappingClausesDetected) {
  Conjunct A, B;
  A.add(Constraint::ge(var("i")));      // i >= 0
  B.add(Constraint::ge(var("i") - 5));  // i >= 5 (subset of A: overlaps)
  std::vector<Diagnostic> Diags =
      validateDnf({A, B}, oracleOpts(/*RequireDisjoint=*/true));
  EXPECT_TRUE(hasRule(Diags, "clauses-overlap"));

  // Without RequireDisjoint the same DNF is legal.
  EXPECT_TRUE(validateDnf({A, B}, oracleOpts()).empty());
}

//===----------------------------------------------------------------------===//
// Poly / Piecewise rules
//===----------------------------------------------------------------------===//

TEST(Validator, ModAtomCanonicalizedOnConstruction) {
  Atom Good = Atom::mod(var("n") + AffineExpr(5), BigInt(2));
  Validator V;
  V.checkQuasiPolynomial(QuasiPolynomial::fromAtom(Good), "t");
  EXPECT_TRUE(V.empty()); // 5 mod 2 == 1: canonicalized on construction.
}

TEST(Validator, PiecewiseFromCountIsClean) {
  Formula F = parseFormulaOrDie("1 <= i <= n && 2 | i");
  PiecewiseValue V = countSolutions(F, {"i"});
  std::vector<Diagnostic> Diags = validatePiecewise(V);
  for (const Diagnostic &D : Diags)
    ADD_FAILURE() << D.toString();
}

TEST(Validator, GuardWildcardDetected) {
  Conjunct Guard;
  Guard.addWildcard("$3");
  Guard.add(Constraint::eq(var("n") - var("$3") * BigInt(2)));
  PiecewiseValue V;
  V.add({Guard, QuasiPolynomial(1)});
  EXPECT_TRUE(hasRule(validatePiecewise(V), "guard-wildcard"));
}

TEST(Validator, OverlappingGuardsOnlyWithRequireDisjoint) {
  Conjunct G1, G2;
  G1.add(Constraint::ge(var("n")));
  G2.add(Constraint::ge(var("n") - 5));
  PiecewiseValue V;
  V.add({G1, QuasiPolynomial(1)});
  V.add({G2, QuasiPolynomial(2)});
  // Overlapping guards are legitimate by default (piece values sum).
  EXPECT_TRUE(validatePiecewise(V, oracleOpts()).empty());
  EXPECT_TRUE(
      hasRule(validatePiecewise(V, oracleOpts(/*RequireDisjoint=*/true)),
              "guards-overlap"));
}

//===----------------------------------------------------------------------===//
// Diagnostic formatting
//===----------------------------------------------------------------------===//

TEST(Validator, DiagnosticToString) {
  Diagnostic D{Severity::Error, IRLayer::Dnf, "clauses-overlap",
               "clauses 0 and 1 share an integer point", "dnf"};
  EXPECT_EQ(D.toString(),
            "error: [dnf/clauses-overlap] clauses 0 and 1 share an integer "
            "point (at dnf)");
}

} // namespace
