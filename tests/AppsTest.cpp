//===- tests/AppsTest.cpp - Loop nests, memory model, scheduling, HPF ----===//

#include "apps/HpfDistribution.h"
#include "apps/LoopNest.h"
#include "apps/MemoryModel.h"
#include "apps/Scheduling.h"
#include "apps/UniformlyGenerated.h"

#include <gtest/gtest.h>

using namespace omega;

namespace {

AffineExpr var(const char *N) { return AffineExpr::variable(N); }
Rational rat(long long N, long long D = 1) {
  return Rational(BigInt(N), BigInt(D));
}

TEST(LoopNestTest, RectangularIterationCount) {
  LoopNest Nest;
  Nest.add("i", AffineExpr(1), var("n"));
  Nest.add("j", AffineExpr(1), var("m"));
  PiecewiseValue V = Nest.iterationCount();
  for (int64_t N = 0; N <= 5; ++N)
    for (int64_t M = 0; M <= 5; ++M)
      EXPECT_EQ(V.evaluate({{"n", BigInt(N)}, {"m", BigInt(M)}}),
                rat(N * M));
}

TEST(LoopNestTest, TriangularWithGuard) {
  // Example 6's space: 1 <= i, 1 <= j <= n, 2i <= 3j (the guard is what
  // actually bounds i; the loose loop bound 3n never binds).
  LoopNest Nest;
  Nest.add("i", AffineExpr(1), BigInt(3) * var("n"));
  Nest.add("j", AffineExpr(1), var("n"));
  Nest.guard(Constraint::ge(BigInt(3) * var("j") - BigInt(2) * var("i")));
  PiecewiseValue V = Nest.iterationCount();
  for (int64_t N = 0; N <= 10; ++N) {
    int64_t Expected = N >= 1 ? (3 * N * N + 2 * N - (N % 2)) / 4 : 0;
    EXPECT_EQ(V.evaluate({{"n", BigInt(N)}}), rat(Expected)) << N;
  }
}

TEST(LoopNestTest, SteppedLoop) {
  // for i = 1 to n step 3.
  LoopNest Nest;
  Nest.add("i", AffineExpr(1), var("n"), BigInt(3));
  PiecewiseValue V = Nest.iterationCount();
  for (int64_t N = 0; N <= 14; ++N) {
    int64_t Expected = N >= 1 ? (N - 1) / 3 + 1 : 0;
    EXPECT_EQ(V.evaluate({{"n", BigInt(N)}}), rat(Expected)) << N;
  }
}

TEST(LoopNestTest, MinMaxBounds) {
  // for i = 1 to min(n, m).
  Loop L;
  L.Var = "i";
  L.Lowers.push_back(AffineExpr(1));
  L.Uppers.push_back(var("n"));
  L.Uppers.push_back(var("m"));
  LoopNest Nest;
  Nest.add(L);
  PiecewiseValue V = Nest.iterationCount();
  for (int64_t N = 0; N <= 5; ++N)
    for (int64_t M = 0; M <= 5; ++M)
      EXPECT_EQ(V.evaluate({{"n", BigInt(N)}, {"m", BigInt(M)}}),
                rat(std::max<int64_t>(0, std::min(N, M))));
}

TEST(LoopNestTest, FlopCount) {
  // Inner work = i flops at outer iteration i: total n(n+1)/2.
  LoopNest Nest;
  Nest.add("i", AffineExpr(1), var("n"));
  PiecewiseValue V = Nest.flopCount(QuasiPolynomial::variable("i"));
  for (int64_t N = 0; N <= 8; ++N)
    EXPECT_EQ(V.evaluate({{"n", BigInt(N)}}),
              rat(std::max<int64_t>(0, N * (N + 1) / 2)));
}

TEST(MemoryModelTest, FSTExample4) {
  // §6 Example 4: a(6i + 9j - 7) over i in 1..8, j in 1..5 touches 25
  // distinct locations.
  LoopNest Nest;
  Nest.add("i", AffineExpr(1), AffineExpr(8));
  Nest.add("j", AffineExpr(1), AffineExpr(5));
  ArrayRef R{"a", {BigInt(6) * var("i") + BigInt(9) * var("j") -
                   AffineExpr(7)}};
  PiecewiseValue V = countDistinctLocations(Nest, {R}, "a");
  EXPECT_EQ(V.evaluateInt({}).toInt64(), 25);
}

TEST(MemoryModelTest, OverlappingRefsCountedOnce) {
  // a[i] and a[i+1] over i = 1..n touch n+1 cells (not 2n).
  LoopNest Nest;
  Nest.add("i", AffineExpr(1), var("n"));
  std::vector<ArrayRef> Refs{{"a", {var("i")}},
                             {"a", {var("i") + AffineExpr(1)}}};
  PiecewiseValue V = countDistinctLocations(Nest, Refs, "a");
  for (int64_t N = 1; N <= 8; ++N)
    EXPECT_EQ(V.evaluate({{"n", BigInt(N)}}), rat(N + 1)) << N;
}

TEST(MemoryModelTest, SORDistinctLocationsSymbolic) {
  // §6 Example 5 / Figure 2: the SOR stencil touches N² - 4 cells;
  // 249996 at N = 500.
  LoopNest Nest;
  Nest.add("i", AffineExpr(2), var("N") - AffineExpr(1));
  Nest.add("j", AffineExpr(2), var("N") - AffineExpr(1));
  std::vector<ArrayRef> Refs{
      {"a", {var("i"), var("j")}},
      {"a", {var("i") - AffineExpr(1), var("j")}},
      {"a", {var("i") + AffineExpr(1), var("j")}},
      {"a", {var("i"), var("j") - AffineExpr(1)}},
      {"a", {var("i"), var("j") + AffineExpr(1)}}};
  PiecewiseValue V = countDistinctLocations(Nest, Refs, "a");
  for (int64_t N = 3; N <= 12; ++N)
    EXPECT_EQ(V.evaluate({{"N", BigInt(N)}}), rat(N * N - 4)) << N;
  EXPECT_EQ(V.evaluateInt({{"N", BigInt(500)}}).toInt64(), 249996);
}

TEST(MemoryModelTest, SORCacheLines500) {
  // Figure 2's cache-line count: 16000 lines at N = 500 with 16-element
  // lines mapped as [(i-1) div 16, j].
  LoopNest Nest;
  Nest.add("i", AffineExpr(2), var("N") - AffineExpr(1));
  Nest.add("j", AffineExpr(2), var("N") - AffineExpr(1));
  std::vector<ArrayRef> Refs{
      {"a", {var("i"), var("j")}},
      {"a", {var("i") - AffineExpr(1), var("j")}},
      {"a", {var("i") + AffineExpr(1), var("j")}},
      {"a", {var("i"), var("j") - AffineExpr(1)}},
      {"a", {var("i"), var("j") + AffineExpr(1)}}};
  CacheMapping Map;
  PiecewiseValue V = countDistinctCacheLines(Nest, Refs, "a", Map);
  EXPECT_EQ(V.evaluateInt({{"N", BigInt(500)}}).toInt64(), 16000);
  // Brute-force cross-check for small N: lines {(floor((i-1)/16), j)}
  // over touched cells.
  for (int64_t N = 3; N <= 24; N += 7) {
    std::set<std::pair<int64_t, int64_t>> Lines;
    for (int64_t I = 2; I <= N - 1; ++I)
      for (int64_t J = 2; J <= N - 1; ++J) {
        auto Touch = [&](int64_t X, int64_t Y) {
          int64_t Shift = X - 1;
          int64_t Line = Shift >= 0 ? Shift / 16 : (Shift - 15) / 16;
          Lines.insert({Line, Y});
        };
        Touch(I, J);
        Touch(I - 1, J);
        Touch(I + 1, J);
        Touch(I, J - 1);
        Touch(I, J + 1);
      }
    EXPECT_EQ(V.evaluate({{"N", BigInt(N)}}), rat(Lines.size())) << N;
  }
}

TEST(UniformlyGeneratedTest, ZeroOneEncoding) {
  // 5-point stencil via the 0-1 method: exactly 5 delta points.
  std::vector<Offset> Stencil{{BigInt(0), BigInt(0)},
                              {BigInt(-1), BigInt(0)},
                              {BigInt(1), BigInt(0)},
                              {BigInt(0), BigInt(-1)},
                              {BigInt(0), BigInt(1)}};
  Formula F = offsetsZeroOneFormula(Stencil, {"dx", "dy"});
  EXPECT_EQ(countConcrete(F, {"dx", "dy"}).toInt64(), 5);
  // Membership is exactly the stencil.
  std::vector<Conjunct> D = simplify(F);
  for (int64_t X = -2; X <= 2; ++X)
    for (int64_t Y = -2; Y <= 2; ++Y) {
      bool Expected = false;
      for (const Offset &P : Stencil)
        Expected |= P[0] == BigInt(X) && P[1] == BigInt(Y);
      bool Got = false;
      for (const Conjunct &C : D)
        Got |= containsPoint(C, {{"dx", BigInt(X)}, {"dy", BigInt(Y)}});
      EXPECT_EQ(Got, Expected) << X << "," << Y;
    }
}

TEST(UniformlyGeneratedTest, HullSummaries) {
  std::vector<std::string> Vars{"dx", "dy"};
  // 5-point stencil: hull is the diamond |dx| + |dy| <= 1 — exact.
  std::vector<Offset> Five{{BigInt(0), BigInt(0)},
                           {BigInt(-1), BigInt(0)},
                           {BigInt(1), BigInt(0)},
                           {BigInt(0), BigInt(-1)},
                           {BigInt(0), BigInt(1)}};
  auto S5 = summarizeOffsetsHull(Five, Vars);
  ASSERT_TRUE(S5.has_value());
  EXPECT_TRUE(S5->Exact);
  EXPECT_EQ(S5->PointCount.toInt64(), 5);

  // 4-point stencil (no center): diamond plus the stride dx+dy odd — the
  // paper says the Omega test can summarize it with strides.
  std::vector<Offset> Four{{BigInt(-1), BigInt(0)},
                           {BigInt(1), BigInt(0)},
                           {BigInt(0), BigInt(-1)},
                           {BigInt(0), BigInt(1)}};
  auto S4 = summarizeOffsetsHull(Four, Vars);
  ASSERT_TRUE(S4.has_value());
  EXPECT_TRUE(S4->Exact);
  EXPECT_EQ(S4->PointCount.toInt64(), 4);

  // 9-point stencil: the full 3x3 box — exact.
  std::vector<Offset> Nine;
  for (int64_t X = -1; X <= 1; ++X)
    for (int64_t Y = -1; Y <= 1; ++Y)
      Nine.push_back({BigInt(X), BigInt(Y)});
  auto S9 = summarizeOffsetsHull(Nine, Vars);
  ASSERT_TRUE(S9.has_value());
  EXPECT_TRUE(S9->Exact);
  EXPECT_EQ(S9->PointCount.toInt64(), 9);

  // A non-convex-summarizable set: corners of a 2x2 box plus center of a
  // far edge — hull picks up extra points, Exact must be false.
  std::vector<Offset> Odd{{BigInt(0), BigInt(0)},
                          {BigInt(4), BigInt(0)},
                          {BigInt(2), BigInt(2)},
                          {BigInt(1), BigInt(0)}};
  auto SOdd = summarizeOffsetsHull(Odd, Vars);
  ASSERT_TRUE(SOdd.has_value());
  EXPECT_FALSE(SOdd->Exact);
  EXPECT_GT(SOdd->PointCount.toInt64(), 4);
}

TEST(UniformlyGeneratedTest, OneDimensional) {
  std::vector<Offset> Offs{{BigInt(0)}, {BigInt(3)}, {BigInt(6)}};
  auto S = summarizeOffsetsHull(Offs, {"d"});
  ASSERT_TRUE(S.has_value());
  EXPECT_TRUE(S->Exact); // 0..6 with stride 3.
  EXPECT_EQ(S->PointCount.toInt64(), 3);
  std::vector<Offset> Gap{{BigInt(0)}, {BigInt(1)}, {BigInt(5)}};
  auto G = summarizeOffsetsHull(Gap, {"d"});
  ASSERT_TRUE(G.has_value());
  EXPECT_FALSE(G->Exact); // 0..5 has 6 points.
}

TEST(SchedulingTest, TriangularNotBalancedRectangularIs) {
  LoopNest Tri;
  Tri.add("i", AffineExpr(1), var("n"));
  Tri.add("j", AffineExpr(1), var("i"));
  QuasiPolynomial One(Rational(1));
  Assignment Sym{{"n", BigInt(10)}};
  EXPECT_FALSE(isLoadBalanced(Tri, "i", One, Sym, BigInt(1), BigInt(10)));

  LoopNest Rect;
  Rect.add("i", AffineExpr(1), var("n"));
  Rect.add("j", AffineExpr(1), var("n"));
  EXPECT_TRUE(isLoadBalanced(Rect, "i", One, Sym, BigInt(1), BigInt(10)));
}

TEST(SchedulingTest, PerIterationWorkSymbolic) {
  // Triangular loop: iteration i does i units of work.
  LoopNest Tri;
  Tri.add("i", AffineExpr(1), var("n"));
  Tri.add("j", AffineExpr(1), var("i"));
  PiecewiseValue W = perIterationWork(Tri, "i", QuasiPolynomial(rat(1)));
  for (int64_t I = 1; I <= 10; ++I)
    EXPECT_EQ(W.evaluate({{"n", BigInt(10)}, {"i", BigInt(I)}}), rat(I))
        << I;
}

TEST(SchedulingTest, BalancedChunksEqualizeFlops) {
  // Triangular loop over n = 20, 4 processors; total = 210 flops.
  LoopNest Tri;
  Tri.add("i", AffineExpr(1), var("n"));
  Tri.add("j", AffineExpr(1), var("i"));
  Assignment Sym{{"n", BigInt(20)}};
  std::vector<Chunk> Chunks = balancedChunks(Tri, "i",
                                             QuasiPolynomial(rat(1)), Sym,
                                             BigInt(1), BigInt(20), 4);
  ASSERT_EQ(Chunks.size(), 4u);
  BigInt Total(0);
  BigInt Cursor(1);
  for (const Chunk &C : Chunks) {
    EXPECT_EQ(C.Begin, Cursor);
    Cursor = C.End + BigInt(1);
    Total += C.Flops;
    // Every chunk within ~max-iteration-weight of the ideal 52.5.
    EXPECT_GE(C.Flops.toInt64(), 33);  // 52.5 - 20 floor.
    EXPECT_LE(C.Flops.toInt64(), 73);  // 52.5 + 20 ceil.
  }
  EXPECT_EQ(Cursor, BigInt(21));
  EXPECT_EQ(Total.toInt64(), 210);
  // Naive equal-iteration chunking gives processor 3 work 15+...+20 = 105;
  // balanced chunking must beat that imbalance.
  int64_t MaxFlops = 0;
  for (const Chunk &C : Chunks)
    MaxFlops = std::max(MaxFlops, C.Flops.toInt64());
  EXPECT_LT(MaxFlops, 105);
}

TEST(HpfTest, CellsPerProcessorPaperExample) {
  // §3.3: T(0:1024)... the paper's block-cyclic(4) over 8 processors.
  // With extent 1024 every processor owns exactly 128 cells.
  BlockCyclic Dist{BigInt(4), BigInt(8), BigInt(1024)};
  PiecewiseValue V = cellsPerProcessor(Dist);
  for (int64_t P = 0; P <= 7; ++P)
    EXPECT_EQ(V.evaluate({{"p", BigInt(P)}}), rat(128)) << P;
  // Uneven extent 1025: processor 0 gets one extra cell.
  BlockCyclic Dist2{BigInt(4), BigInt(8), BigInt(1025)};
  PiecewiseValue V2 = cellsPerProcessor(Dist2);
  EXPECT_EQ(V2.evaluate({{"p", BigInt(0)}}), rat(129));
  for (int64_t P = 1; P <= 7; ++P)
    EXPECT_EQ(V2.evaluate({{"p", BigInt(P)}}), rat(128)) << P;
}

TEST(HpfTest, ShiftCommunicationVolume) {
  // Block-cyclic(4) over 4 procs, extent 64, shift by 1: each processor
  // receives one element per owned block boundary.
  BlockCyclic Dist{BigInt(4), BigInt(4), BigInt(64)};
  PiecewiseValue V = shiftCommVolume(Dist, BigInt(1));
  // Brute-force ground truth.
  auto Owner = [&](int64_t T) { return (T / 4) % 4; };
  for (int64_t P = 0; P <= 3; ++P) {
    int64_t Expected = 0;
    for (int64_t T = 0; T < 64; ++T)
      if (Owner(T) == P && T + 1 < 64 && Owner(T + 1) != P)
        ++Expected;
    EXPECT_EQ(V.evaluate({{"p", BigInt(P)}}), rat(Expected)) << P;
  }
}

} // namespace
