//===- tests/FuzzDifferentialTest.cpp - Random formulas vs the oracle ----===//
//
// Generates ~200 random bounded formulas per seed (tests/FuzzGen.h) and
// cross-checks the symbolic count from the full pipeline against the
// brute-force enumeration oracle at sampled symbol values.  On failure the
// seed, case index, formula text, and symbol assignment are all printed,
// so any counterexample reproduces with a one-line test filter.
//
//===----------------------------------------------------------------------===//

#include "FuzzGen.h"

#include "baselines/Enumerator.h"
#include "counting/Summation.h"
#include "presburger/Parser.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

using namespace omega;

namespace {

constexpr int kCasesPerSeed = 200;

/// Symbol values to sample; chosen to straddle the enumeration box (some
/// guards are vacuous or saturated at the extremes, some split inside).
const int64_t kSymbolSamples[] = {-3, 2, 9};

std::string describe(const Assignment &A) {
  std::string S;
  for (const auto &KV : A)
    S += KV.first + "=" + KV.second.toString() + " ";
  return S.empty() ? "(no symbols)" : S;
}

class FuzzDifferential : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FuzzDifferential, CountMatchesEnumerator) {
  uint64_t Seed = GetParam();
  fuzz::Generator Gen(Seed);
  for (int Case = 0; Case < kCasesPerSeed; ++Case) {
    fuzz::FuzzCase FC = Gen.next();
    SCOPED_TRACE("seed=" + std::to_string(Seed) +
                 " case=" + std::to_string(Case) + " formula: " + FC.Text);

    ParseResult R = parseFormula(FC.Text);
    ASSERT_TRUE(R) << R.Error;

    VarSet Vars(FC.Vars.begin(), FC.Vars.end());
    PiecewiseValue V = countSolutions(*R.Value, Vars);
    ASSERT_FALSE(V.isUnbounded())
        << "box-bounded formula reported as unbounded";

    // Build the symbol assignments to sample: one per sample value, with
    // every symbol set to that value, plus one mixed assignment when two
    // symbols are present.
    std::vector<Assignment> Samples;
    if (FC.Symbols.empty()) {
      Samples.push_back({});
    } else {
      for (int64_t S : kSymbolSamples) {
        Assignment A;
        for (const std::string &Sym : FC.Symbols)
          A[Sym] = BigInt(S);
        Samples.push_back(std::move(A));
      }
      if (FC.Symbols.size() == 2)
        Samples.push_back({{FC.Symbols[0], BigInt(7)},
                           {FC.Symbols[1], BigInt(-2)}});
    }

    for (const Assignment &A : Samples) {
      BigInt Expect =
          enumerateCount(*R.Value, FC.Vars, A, FC.BoxLo, FC.BoxHi,
                         FC.WitnessLo, FC.WitnessHi);
      BigInt Got = V.evaluateInt(A);
      EXPECT_EQ(Got, Expect)
          << "at " << describe(A) << "\nsymbolic answer: " << V.toString();
      if (Got != Expect)
        return; // one counterexample per case is enough to debug
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzDifferential,
                         ::testing::Values(uint64_t(17), uint64_t(42)));

} // namespace
