//===- tests/FuzzDifferentialTest.cpp - Random formulas vs the oracle ----===//
//
// Generates ~200 random bounded formulas per seed (tests/FuzzGen.h) and
// cross-checks the symbolic count from the full pipeline against the
// brute-force enumeration oracle at sampled symbol values.  On failure the
// seed, case index, formula text, and symbol assignment are all printed,
// so any counterexample reproduces with a one-line test filter.
//
//===----------------------------------------------------------------------===//

#include "FuzzGen.h"

#include "baselines/Enumerator.h"
#include "counting/Summation.h"
#include "omega/Omega.h"
#include "presburger/Parser.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <iostream>
#include <map>
#include <string>
#include <vector>

using namespace omega;

namespace {

constexpr int kCasesPerSeed = 200;

/// Symbol values to sample; chosen to straddle the enumeration box (some
/// guards are vacuous or saturated at the extremes, some split inside).
const int64_t kSymbolSamples[] = {-3, 2, 9};

/// Name-sorted (name, value) view of an assignment; Assignment iterates in
/// id order, but everything here that prints or pins symbols wants the
/// stable name order.
std::vector<std::pair<std::string, BigInt>> byName(const Assignment &A) {
  std::vector<std::pair<std::string, BigInt>> Out;
  Out.reserve(A.size());
  for (const auto &[V, Value] : A)
    Out.emplace_back(varName(V), Value);
  std::sort(Out.begin(), Out.end(),
            [](const auto &L, const auto &R) { return L.first < R.first; });
  return Out;
}

std::string describe(const Assignment &A) {
  std::string S;
  for (const auto &KV : byName(A))
    S += KV.first + "=" + KV.second.toString() + " ";
  return S.empty() ? "(no symbols)" : S;
}

class FuzzDifferential : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FuzzDifferential, CountMatchesEnumerator) {
  uint64_t Seed = GetParam();
  fuzz::Generator Gen(Seed);
  for (int Case = 0; Case < kCasesPerSeed; ++Case) {
    fuzz::FuzzCase FC = Gen.next();
    SCOPED_TRACE("seed=" + std::to_string(Seed) +
                 " case=" + std::to_string(Case) + " formula: " + FC.Text);

    ParseResult R = parseFormula(FC.Text);
    ASSERT_TRUE(R) << R.Error;

    VarSet Vars(FC.Vars.begin(), FC.Vars.end());
    PiecewiseValue V = countSolutions(*R.Value, Vars);
    ASSERT_FALSE(V.isUnbounded())
        << "box-bounded formula reported as unbounded";

    // Build the symbol assignments to sample: one per sample value, with
    // every symbol set to that value, plus one mixed assignment when two
    // symbols are present.
    std::vector<Assignment> Samples;
    if (FC.Symbols.empty()) {
      Samples.push_back({});
    } else {
      for (int64_t S : kSymbolSamples) {
        Assignment A;
        for (const std::string &Sym : FC.Symbols)
          A[Sym] = BigInt(S);
        Samples.push_back(std::move(A));
      }
      if (FC.Symbols.size() == 2)
        Samples.push_back({{FC.Symbols[0], BigInt(7)},
                           {FC.Symbols[1], BigInt(-2)}});
    }

    for (const Assignment &A : Samples) {
      BigInt Expect =
          enumerateCount(*R.Value, FC.Vars, A, FC.BoxLo, FC.BoxHi,
                         FC.WitnessLo, FC.WitnessHi);
      BigInt Got = V.evaluateInt(A);
      EXPECT_EQ(Got, Expect)
          << "at " << describe(A) << "\nsymbolic answer: " << V.toString();
      if (Got != Expect)
        return; // one counterexample per case is enough to debug
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzDifferential,
                         ::testing::Values(uint64_t(17), uint64_t(42)));

//===----------------------------------------------------------------------===//
// Cross-backend differential: every registered backend on every case.
//===----------------------------------------------------------------------===//
//
// The DESIGN.md §14 contract under fuzz: pin each sampled symbol assignment
// into the formula (F ∧ n=v, counting n as one more variable) so the
// concrete backends apply, then demand that automaton, enumerate, and auto
// all return *bit-identical* counts to the enumeration oracle.  A backend
// may refuse (Status::Error with ErrorKind::Unsupported) — that is a skip,
// and every skip is tallied with its reason; any other error, any
// degradation, or any disagreement fails.  Zero silent skips: every
// (case, sample, backend) attempt lands in exactly one of the two tallies.

class CrossBackendDifferential : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CrossBackendDifferential, AllBackendsAgreeExactly) {
  uint64_t Seed = GetParam();
  fuzz::Generator Gen(Seed);

  const BackendKind kBackends[] = {BackendKind::Automaton,
                                   BackendKind::Enumerate, BackendKind::Auto};
  std::map<std::string, uint64_t> Answered, Skipped;
  std::map<std::string, uint64_t> SkipReasons;
  uint64_t Attempts = 0;

  for (int Case = 0; Case < kCasesPerSeed; ++Case) {
    fuzz::FuzzCase FC = Gen.next();
    SCOPED_TRACE("seed=" + std::to_string(Seed) +
                 " case=" + std::to_string(Case) + " formula: " + FC.Text);

    ParseResult R = parseFormula(FC.Text);
    ASSERT_TRUE(R) << R.Error;

    std::vector<Assignment> Samples;
    if (FC.Symbols.empty()) {
      Samples.push_back({});
    } else {
      for (int64_t S : kSymbolSamples) {
        Assignment A;
        for (const std::string &Sym : FC.Symbols)
          A[Sym] = BigInt(S);
        Samples.push_back(std::move(A));
      }
      if (FC.Symbols.size() == 2)
        Samples.push_back({{FC.Symbols[0], BigInt(7)},
                           {FC.Symbols[1], BigInt(-2)}});
    }

    for (const Assignment &A : Samples) {
      // Independent ground truth: the brute-force sweep at A.
      BigInt Expect =
          enumerateCount(*R.Value, FC.Vars, A, FC.BoxLo, FC.BoxHi,
                         FC.WitnessLo, FC.WitnessHi);

      // Pin the symbols into the formula so the concrete backends apply.
      std::string Pinned = "(" + FC.Text + ")";
      std::vector<std::string> AllVars = FC.Vars;
      for (const auto &KV : byName(A)) {
        Pinned += " && " + KV.first + " = " + KV.second.toString();
        AllVars.push_back(KV.first);
      }
      ParseResult RP = parseFormula(Pinned);
      ASSERT_TRUE(RP) << RP.Error << " in pinned: " << Pinned;
      VarSet Vars(AllVars.begin(), AllVars.end());

      for (BackendKind K : kBackends) {
        CountOptions Opts;
        Opts.Backend = K;
        const char *Name = backendKindName(K);
        SCOPED_TRACE(std::string("backend=") + Name +
                     " at " + describe(A));
        ++Attempts;

        CountResult CR = countSolutions(*RP.Value, Vars, Opts);
        if (CR.Status == CountStatus::Error) {
          // Refusals are the only sanctioned skip, and always carry a
          // reason; anything else is a real failure.
          ASSERT_EQ(CR.Err.Kind, ErrorKind::Unsupported)
              << "non-refusal error: " << CR.Err.toString();
          ASSERT_FALSE(CR.Err.Message.empty()) << "silent refusal";
          ++Skipped[Name];
          ++SkipReasons[std::string(Name) + ": " + CR.Err.Message];
          continue;
        }
        ASSERT_EQ(CR.Status, CountStatus::Exact)
            << "backend degraded on a bounded concrete case";
        BigInt Got = CR.Value.evaluateInt(Assignment{});
        ASSERT_EQ(Got, Expect)
            << "backend " << Name << " (" << CR.Backend
            << ") disagrees with the oracle";
        ++Answered[Name];
      }
    }
  }

  // Full accounting: every attempt is either answered or skipped with a
  // reason, and each backend answered a substantial share (a backend that
  // refuses everything would vacuously "agree").
  uint64_t Total = 0;
  for (BackendKind K : kBackends) {
    const char *Name = backendKindName(K);
    uint64_t Ans = Answered[Name], Skip = Skipped[Name];
    Total += Ans + Skip;
    EXPECT_GE(Ans, (Ans + Skip) / 2)
        << Name << " skipped the majority of cases";
    std::cout << "[cross-backend] seed " << Seed << " " << Name << ": "
              << Ans << " answered, " << Skip << " skipped\n";
  }
  EXPECT_EQ(Total, Attempts) << "attempts leaked from the tally";
  EXPECT_EQ(Skipped["auto"], 0u)
      << "auto must inherit pugh's totality on concrete cases";
  for (const auto &KV : SkipReasons)
    std::cout << "[cross-backend]   skip x" << KV.second << ": " << KV.first
              << "\n";
}

// Three seeds x kCasesPerSeed = 600 generated formulas (>= the 500-case
// floor), disjoint from the FuzzDifferential seeds above.
INSTANTIATE_TEST_SUITE_P(Seeds, CrossBackendDifferential,
                         ::testing::Values(uint64_t(5), uint64_t(23),
                                           uint64_t(91)));

} // namespace
