//===- tests/DeterminismTest.cpp - Bit-identical results at any width ----===//
//
// The determinism contract (DESIGN.md §8): worker count and cache state are
// performance knobs only — the piecewise answer must be *textually*
// identical for every configuration.  This runs a fuzz corpus plus every
// examples/formulas/*.presburger file at worker counts {0, 1, 4}, each from
// a fully reset state (wildcard counters + cache), and once more with the
// cache disabled, comparing the printed results character for character.
//
//===----------------------------------------------------------------------===//

#include "FuzzGen.h"
#include "tools/FormulaFile.h"

#include "counting/Summation.h"
#include "omega/Omega.h"
#include "presburger/Parser.h"
#include "presburger/Var.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <string>
#include <vector>

using namespace omega;

namespace {

constexpr unsigned kWorkerCounts[] = {0, 1, 4};

/// Counts \p Text over \p Vars under the given knobs from a reset state and
/// returns the printed piecewise answer.
std::string countToString(const std::string &Text,
                          const std::vector<std::string> &Vars,
                          unsigned Workers, bool CacheEnabled) {
  clearConjunctCache();
  resetWildcardState();
  ParseResult R = parseFormula(Text);
  EXPECT_TRUE(R) << R.Error << " in: " << Text;
  if (!R)
    return "<parse error>";
  CountOptions Opts;
  Opts.Workers = Workers;
  Opts.CacheEnabled = CacheEnabled;
  CountResult CR =
      countSolutions(*R.Value, VarSet(Vars.begin(), Vars.end()), Opts);
  EXPECT_NE(CR.Status, CountStatus::Error) << CR.Err.toString();
  return CR.Value.toString();
}

/// Asserts the answer for (Text, Vars) is identical across all worker
/// counts and with the cache off.
void expectDeterministic(const std::string &Label, const std::string &Text,
                         const std::vector<std::string> &Vars) {
  SCOPED_TRACE(Label + ": " + Text);
  std::string Reference = countToString(Text, Vars, 0, /*CacheEnabled=*/true);
  for (unsigned W : kWorkerCounts) {
    std::string Got = countToString(Text, Vars, W, /*CacheEnabled=*/true);
    EXPECT_EQ(Got, Reference) << "workers=" << W << " diverged";
  }
  std::string NoCache = countToString(Text, Vars, 4, /*CacheEnabled=*/false);
  EXPECT_EQ(NoCache, Reference) << "cache-off diverged";
}

TEST(Determinism, FuzzCorpus) {
  fuzz::Generator Gen(/*Seed=*/7);
  for (int Case = 0; Case < 40; ++Case) {
    fuzz::FuzzCase FC = Gen.next();
    expectDeterministic("fuzz case " + std::to_string(Case), FC.Text,
                        FC.Vars);
  }
}

TEST(Determinism, ExampleFormulas) {
  namespace fs = std::filesystem;
  std::vector<std::string> Paths;
  for (const fs::directory_entry &E : fs::directory_iterator(EXAMPLES_DIR))
    if (E.path().extension() == ".presburger")
      Paths.push_back(E.path().string());
  std::sort(Paths.begin(), Paths.end());
  ASSERT_FALSE(Paths.empty()) << "no .presburger files under " << EXAMPLES_DIR;

  for (const std::string &Path : Paths) {
    FormulaFile FF;
    std::string Err;
    ASSERT_TRUE(readFormulaFile(Path, FF, Err)) << Path << ": " << Err;
    expectDeterministic(Path, FF.FormulaText, FF.Vars);
  }
}

} // namespace
