//===- tests/CoalesceTest.cpp - Clause coalescing contracts --------------===//
//
// The coalesce worklist (DESIGN.md §15) must be a pure speedup: the
// indexed prefilter and memoized worklist may only skip work the full
// pair test would reject, and the merge order must reproduce the seed
// algorithm's restart scan exactly.  These tests pin that down:
//
//   * a local reimplementation of the seed restart loop (public
//     coalescePair in a while-changed scan) must agree textually with
//     coalesceClauses on hundreds of generated unions,
//   * coalesceClauses is idempotent,
//   * the union's solution count is invariant under coalescing and under
//     clause-order shuffles, across every counting backend,
//   * coalescing makeDisjoint output preserves pairwise disjointness,
//   * wildcarded clauses are excluded from merging and survive untouched.
//
//===----------------------------------------------------------------------===//

#include "counting/Summation.h"
#include "omega/Omega.h"
#include "presburger/Formula.h"
#include "presburger/Var.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <string>
#include <vector>

using namespace omega;

namespace {

AffineExpr var(const std::string &Name) { return AffineExpr::variable(Name); }

/// lo <= v <= hi as two inequalities.
void addRange(Conjunct &C, const std::string &V, int Lo, int Hi) {
  C.add(Constraint::ge(var(V) - AffineExpr(Lo)));
  C.add(Constraint::ge(AffineExpr(Hi) - var(V)));
}

/// A random clause over {x, y}: a bounded box, sometimes a stride on x,
/// sometimes a diagonal coupling.  Boxes are small and close together so
/// unions frequently abut or overlap — the interesting inputs for
/// coalescing — and every variable is bounded, so the enumerate backend
/// can always check the count.
Conjunct randomClause(std::mt19937 &Rng) {
  std::uniform_int_distribution<int> LoD(-6, 18), WidthD(0, 9), CoinD(0, 5);
  Conjunct C;
  addRange(C, "x", LoD(Rng), LoD(Rng) + WidthD(Rng) + 1);
  addRange(C, "y", LoD(Rng), LoD(Rng) + WidthD(Rng) + 1);
  if (CoinD(Rng) == 0)
    C.add(Constraint::stride(BigInt(2 + CoinD(Rng) % 2), var("x")));
  if (CoinD(Rng) == 1)
    C.add(Constraint::ge(AffineExpr(30) - var("x") - var("y")));
  return C;
}

std::vector<Conjunct> randomUnion(std::mt19937 &Rng, size_t MinClauses = 2,
                                  size_t MaxClauses = 8) {
  std::uniform_int_distribution<size_t> ND(MinClauses, MaxClauses);
  std::vector<Conjunct> Clauses;
  size_t N = ND(Rng);
  for (size_t I = 0; I < N; ++I)
    Clauses.push_back(randomClause(Rng));
  return Clauses;
}

/// The seed algorithm, reimplemented on the public pair primitive: scan
/// for the first mergeable pair in position order, apply it, restart.
/// coalesceClauses replaced this loop with the indexed worklist; the
/// fuzz test below holds the two to textual equality.
std::vector<Conjunct> seedCoalesce(std::vector<Conjunct> Clauses) {
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (size_t I = 0; I < Clauses.size() && !Changed; ++I)
      for (size_t J = I + 1; J < Clauses.size() && !Changed; ++J) {
        if (!Clauses[I].wildcards().empty() ||
            !Clauses[J].wildcards().empty())
          continue;
        if (std::optional<Conjunct> M =
                coalescePair(Clauses[I], Clauses[J])) {
          Clauses[I] = std::move(*M);
          Clauses.erase(Clauses.begin() + J);
          Changed = true;
        }
      }
  }
  return Clauses;
}

std::vector<std::string> strings(const std::vector<Conjunct> &Clauses) {
  std::vector<std::string> Out;
  for (const Conjunct &C : Clauses)
    Out.push_back(C.toString());
  return Out;
}

Formula unionFormula(const std::vector<Conjunct> &Clauses) {
  std::vector<Formula> Parts;
  for (const Conjunct &C : Clauses) {
    std::vector<Formula> Atoms;
    for (const Constraint &K : C.constraints())
      Atoms.push_back(Formula::atom(K));
    Parts.push_back(Formula::conj(std::move(Atoms)));
  }
  return Formula::disj(std::move(Parts));
}

/// Counts the union with the given backend from a reset process state.
/// Returns the exact value's string, or nullopt if the backend refused.
std::optional<std::string> countWith(const std::vector<Conjunct> &Clauses,
                                     BackendKind Backend) {
  clearConjunctCache();
  resetWildcardState();
  CountOptions CO;
  CO.Backend = Backend;
  CountResult CR = countSolutions(unionFormula(Clauses), VarSet{"x", "y"}, CO);
  if (!CR.exact())
    return std::nullopt;
  // Backends print constants with different parenthesization ("(0)" vs
  // "0"); strip the wrapper so the comparison is about the value.
  std::string S = CR.Value.toString();
  while (S.size() >= 2 && S.front() == '(' && S.back() == ')')
    S = S.substr(1, S.size() - 2);
  return S;
}

//===----------------------------------------------------------------------===//
// Tests
//===----------------------------------------------------------------------===//

TEST(Coalesce, MergesAdjacentIntervals) {
  Conjunct A, B;
  addRange(A, "x", 1, 4);
  addRange(A, "y", 0, 5);
  addRange(B, "x", 5, 9);
  addRange(B, "y", 0, 5);
  std::vector<Conjunct> Clauses{A, B};
  coalesceClauses(Clauses);
  ASSERT_EQ(Clauses.size(), 1u) << "[1,4] and [5,9] must merge into [1,9]";

  // A gap blocks the merge: [1,4] vs [6,9] misses x=5.
  Conjunct Gap;
  addRange(Gap, "x", 6, 9);
  addRange(Gap, "y", 0, 5);
  std::vector<Conjunct> NoMerge{A, Gap};
  coalesceClauses(NoMerge);
  EXPECT_EQ(NoMerge.size(), 2u);
}

TEST(Coalesce, WorklistMatchesSeedOnFuzz) {
  for (unsigned Case = 0; Case < 220; ++Case) {
    std::mt19937 Rng(1000 + Case);
    std::vector<Conjunct> Clauses = randomUnion(Rng);

    clearConjunctCache();
    resetWildcardState();
    std::vector<Conjunct> Seed = seedCoalesce(Clauses);

    clearConjunctCache();
    resetWildcardState();
    std::vector<Conjunct> Fast = Clauses;
    coalesceClauses(Fast);

    ASSERT_EQ(strings(Fast), strings(Seed))
        << "worklist diverged from the seed restart scan on case " << Case;
  }
}

TEST(Coalesce, Idempotent) {
  for (unsigned Case = 0; Case < 60; ++Case) {
    std::mt19937 Rng(7000 + Case);
    std::vector<Conjunct> Clauses = randomUnion(Rng);
    coalesceClauses(Clauses);
    std::vector<std::string> Once = strings(Clauses);
    coalesceClauses(Clauses);
    EXPECT_EQ(strings(Clauses), Once)
        << "second coalesce pass changed the union on case " << Case;
  }
}

TEST(Coalesce, CountInvariantAcrossBackendsAndOrders) {
  for (unsigned Case = 0; Case < 50; ++Case) {
    std::mt19937 Rng(3000 + Case);
    std::vector<Conjunct> Clauses = randomUnion(Rng, 2, 5);

    std::optional<std::string> Reference =
        countWith(Clauses, BackendKind::Pugh);
    ASSERT_TRUE(Reference) << "Pugh backend refused case " << Case;

    // Coalescing must not change the set.
    std::vector<Conjunct> Coalesced = Clauses;
    coalesceClauses(Coalesced);
    EXPECT_EQ(countWith(Coalesced, BackendKind::Pugh), Reference)
        << "coalescing changed the count on case " << Case;

    // Nor may the input order change it (merges may differ; the set may
    // not).  Every backend that answers must agree.
    std::vector<Conjunct> Shuffled = Clauses;
    std::shuffle(Shuffled.begin(), Shuffled.end(), Rng);
    coalesceClauses(Shuffled);
    EXPECT_EQ(countWith(Shuffled, BackendKind::Pugh), Reference)
        << "clause order changed the coalesced count on case " << Case;

    for (BackendKind BK : {BackendKind::Automaton, BackendKind::Enumerate}) {
      std::optional<std::string> Got = countWith(Coalesced, BK);
      if (Got)
        EXPECT_EQ(*Got, *Reference)
            << backendKindName(BK) << " disagreed on case " << Case;
    }
  }
}

TEST(Coalesce, PreservesPairwiseDisjointness) {
  for (unsigned Case = 0; Case < 40; ++Case) {
    std::mt19937 Rng(5000 + Case);
    std::vector<Conjunct> Disjoint = makeDisjoint(randomUnion(Rng, 2, 5));
    // makeDisjoint may introduce wildcarded splinter clauses, which the
    // pairwise check (and coalescing) excludes.
    std::vector<Conjunct> Plain;
    for (const Conjunct &C : Disjoint)
      if (C.wildcards().empty())
        Plain.push_back(C);
    ASSERT_TRUE(pairwiseDisjoint(Plain)) << "makeDisjoint broke on " << Case;
    coalesceClauses(Plain);
    EXPECT_TRUE(pairwiseDisjoint(Plain))
        << "coalescing reintroduced overlap on case " << Case;
  }
}

TEST(Coalesce, WildcardedClausesAreExcluded) {
  // Two mergeable plain clauses plus one wildcarded clause: the plain
  // pair must still merge, and the wildcarded clause must pass through
  // byte for byte — the worklist may never sample, negate, or merge it.
  Conjunct A, B, W;
  addRange(A, "x", 1, 4);
  addRange(B, "x", 5, 9);
  W.addWildcard("w");
  W.add(Constraint::eq(var("x") - BigInt(2) * var("w")));
  addRange(W, "x", 40, 60);
  std::string WText = W.toString();

  std::vector<Conjunct> Clauses{A, W, B};
  coalesceClauses(Clauses);
  ASSERT_EQ(Clauses.size(), 2u);
  bool SawWildcard = false;
  for (const Conjunct &C : Clauses)
    SawWildcard |= C.toString() == WText;
  EXPECT_TRUE(SawWildcard) << "wildcarded clause was modified or merged";
}

} // namespace
