# Golden-file comparator for omegacount output, run as a ctest:
#
#   cmake -DCMD=<omegacount> -DFILE=<x.presburger> -DGOLDEN=<x.golden>
#         [-DARGS=<extra;flags>] [-DREGENERATE=1] -P RunGolden.cmake
#
# Runs `omegacount --file FILE [ARGS...]`, compares stdout byte-for-byte
# with GOLDEN, and prints both on mismatch.  ARGS is a CMake ;-list of
# extra flags (e.g. "-DARGS=--backend=automaton"); only stdout is
# compared, so flags that add stderr reporting (--stats) stay
# deterministic.  With -DREGENERATE=1 it rewrites the golden instead
# (used after an intentional output change; see README).

execute_process(
  COMMAND "${CMD}" --file "${FILE}" ${ARGS}
  OUTPUT_VARIABLE Actual
  ERROR_VARIABLE ErrOut
  RESULT_VARIABLE Status)
if(NOT Status EQUAL 0)
  message(FATAL_ERROR "omegacount failed (exit ${Status}) on ${FILE}:\n${ErrOut}")
endif()

if(REGENERATE)
  file(WRITE "${GOLDEN}" "${Actual}")
  message(STATUS "regenerated ${GOLDEN}")
  return()
endif()

if(NOT EXISTS "${GOLDEN}")
  message(FATAL_ERROR "missing golden file ${GOLDEN} — generate it with:\n"
                      "  cmake -DCMD=${CMD} -DFILE=${FILE} -DGOLDEN=${GOLDEN} "
                      "-DREGENERATE=1 -P ${CMAKE_CURRENT_LIST_FILE}")
endif()

file(READ "${GOLDEN}" Expected)
if(NOT Actual STREQUAL Expected)
  message(FATAL_ERROR "golden mismatch for ${FILE}\n"
                      "--- expected (${GOLDEN}) ---\n${Expected}\n"
                      "--- actual ---\n${Actual}")
endif()
