//===- tests/CacheTest.cpp - LruCache + conjunct memoization tests -------===//
//
// Three layers of coverage: the generic bounded LRU map (support/Cache.h),
// the canonical conjunct key (presburger/Conjunct.h) — specifically that
// semantics-preserving rewrites (permutation, scaling, duplication,
// trivially-true constraints) collide onto one key — and the memoized
// omega entry points (omega/Cache.cpp): cached and uncached answers agree,
// and the stats counters/eviction bookkeeping add up.
//
//===----------------------------------------------------------------------===//

#include "omega/Omega.h"
#include "support/Cache.h"

#include <gtest/gtest.h>

#include <random>
#include <string>

using namespace omega;

namespace {

AffineExpr var(const std::string &N) { return AffineExpr::variable(N); }

//===----------------------------------------------------------------------===//
// LruCache
//===----------------------------------------------------------------------===//

TEST(LruCache, HitMissAndCounters) {
  LruCache<int> C(4);
  EXPECT_FALSE(C.lookup("a").has_value());
  EXPECT_EQ(C.insert("a", 1), 0u);
  auto Hit = C.lookup("a");
  ASSERT_TRUE(Hit.has_value());
  EXPECT_EQ(*Hit, 1);
  CacheStats S = C.stats();
  EXPECT_EQ(S.Hits, 1u);
  EXPECT_EQ(S.Misses, 1u);
  EXPECT_EQ(S.Evictions, 0u);
  EXPECT_EQ(C.size(), 1u);
}

TEST(LruCache, EvictsLeastRecentlyUsed) {
  LruCache<int> C(2);
  C.insert("a", 1);
  C.insert("b", 2);
  // Touch "a" so "b" becomes the LRU entry.
  EXPECT_TRUE(C.lookup("a").has_value());
  EXPECT_EQ(C.insert("c", 3), 1u);
  EXPECT_TRUE(C.lookup("a").has_value());
  EXPECT_FALSE(C.lookup("b").has_value()) << "LRU entry should be evicted";
  EXPECT_TRUE(C.lookup("c").has_value());
  EXPECT_EQ(C.stats().Evictions, 1u);
}

TEST(LruCache, InsertExistingRefreshesRecency) {
  LruCache<int> C(2);
  C.insert("a", 1);
  C.insert("b", 2);
  // Re-inserting "a" keeps the first value and refreshes recency, so the
  // next eviction takes "b".
  EXPECT_EQ(C.insert("a", 99), 0u);
  C.insert("c", 3);
  auto A = C.lookup("a");
  ASSERT_TRUE(A.has_value());
  EXPECT_EQ(*A, 1) << "racing re-insert must keep the original value";
  EXPECT_FALSE(C.lookup("b").has_value());
}

TEST(LruCache, CapacityZeroDisables) {
  LruCache<int> C(0);
  C.insert("a", 1);
  EXPECT_FALSE(C.lookup("a").has_value());
  EXPECT_EQ(C.size(), 0u);
  // Disabled lookups are uncounted: a disabled cache reports 0% activity
  // instead of a misleading 100% miss rate.
  EXPECT_EQ(C.stats().Misses, 0u);
}

TEST(LruCache, ShrinkEvictsAndClearKeepsCounters) {
  LruCache<int> C(4);
  for (int I = 0; I < 4; ++I)
    C.insert(std::string(1, char('a' + I)), I);
  C.setCapacity(1);
  EXPECT_EQ(C.size(), 1u);
  EXPECT_EQ(C.stats().Evictions, 3u);
  C.clear();
  EXPECT_EQ(C.size(), 0u);
  EXPECT_EQ(C.stats().Evictions, 3u) << "clear() keeps counters";
  C.resetStats();
  EXPECT_EQ(C.stats().Evictions, 0u);
}

//===----------------------------------------------------------------------===//
// Canonical conjunct keys
//===----------------------------------------------------------------------===//

TEST(CanonicalKey, PermutedConstraintsCollide) {
  Conjunct A, B;
  A.add(Constraint::ge(var("x") - AffineExpr(1)));
  A.add(Constraint::ge(AffineExpr(10) - var("y")));
  A.add(Constraint::stride(3, var("x") + var("y")));
  B.add(Constraint::stride(3, var("x") + var("y")));
  B.add(Constraint::ge(AffineExpr(10) - var("y")));
  B.add(Constraint::ge(var("x") - AffineExpr(1)));
  EXPECT_EQ(canonicalConjunct(A).Key, canonicalConjunct(B).Key);
}

TEST(CanonicalKey, ScaledConstraintsCollide) {
  // 2x + 2y - 4 >= 0 normalizes (GCD division) to x + y - 2 >= 0.
  Conjunct A, B;
  A.add(Constraint::ge(BigInt(2) * var("x") + BigInt(2) * var("y") -
                       AffineExpr(4)));
  B.add(Constraint::ge(var("x") + var("y") - AffineExpr(2)));
  EXPECT_EQ(canonicalConjunct(A).Key, canonicalConjunct(B).Key);
}

TEST(CanonicalKey, DuplicatesAndTautologiesDropOut) {
  Conjunct A, B;
  A.add(Constraint::ge(var("x")));
  A.add(Constraint::ge(var("x")));          // duplicate
  A.add(Constraint::ge(AffineExpr(5)));     // trivially true
  B.add(Constraint::ge(var("x")));
  EXPECT_EQ(canonicalConjunct(A).Key, canonicalConjunct(B).Key);
}

TEST(CanonicalKey, InfeasibleCollapsesToUnsat) {
  Conjunct A;
  A.add(Constraint::ge(var("x")));
  A.add(Constraint::ge(AffineExpr(-3))); // -3 >= 0: trivially false
  CanonicalConjunct Canon = canonicalConjunct(A);
  EXPECT_EQ(Canon.Key, "UNSAT");
  EXPECT_FALSE(feasible(Canon.C));
}

TEST(CanonicalKey, UnusedWildcardsDropOut) {
  Conjunct A, B;
  A.add(Constraint::ge(var("x") - var("'w0")));
  A.addWildcard("'w0");
  A.addWildcard("'w1"); // mentioned nowhere
  B.add(Constraint::ge(var("x") - var("'w0")));
  B.addWildcard("'w0");
  EXPECT_EQ(canonicalConjunct(A).Key, canonicalConjunct(B).Key);
  // But a *used* wildcard is part of the key: dropping it changes meaning.
  Conjunct C;
  C.add(Constraint::ge(var("x") - var("'w0")));
  EXPECT_NE(canonicalConjunct(A).Key, canonicalConjunct(C).Key);
}

TEST(CanonicalKey, DifferentConstantsDiffer) {
  Conjunct A, B;
  A.add(Constraint::ge(var("x") - AffineExpr(1)));
  B.add(Constraint::ge(var("x") - AffineExpr(2)));
  EXPECT_NE(canonicalConjunct(A).Key, canonicalConjunct(B).Key);
}

//===----------------------------------------------------------------------===//
// Memoized omega entry points
//===----------------------------------------------------------------------===//

/// A deterministic little pool of random conjuncts over x, y.
std::vector<Conjunct> randomConjuncts(unsigned Seed, int Count) {
  std::mt19937_64 Rng(Seed);
  auto RC = [&] { return BigInt(int64_t(Rng() % 9) - 4); };
  std::vector<Conjunct> Out;
  for (int I = 0; I < Count; ++I) {
    Conjunct C;
    unsigned N = 2 + Rng() % 3;
    for (unsigned K = 0; K < N; ++K)
      C.add(Constraint::ge(RC() * var("x") + RC() * var("y") +
                           AffineExpr(RC() * 3)));
    C.add(Constraint::ge(var("x") + AffineExpr(6)));
    C.add(Constraint::ge(AffineExpr(6) - var("x")));
    Out.push_back(std::move(C));
  }
  return Out;
}

/// RAII: restores the default cache capacity and a clean cache.
struct CacheGuard {
  ~CacheGuard() {
    configureConjunctCache(size_t(1) << 14);
    clearConjunctCache();
  }
};

TEST(ConjunctCache, CachedMatchesUncached) {
  CacheGuard Guard;
  std::vector<Conjunct> Pool = randomConjuncts(123, 24);

  std::vector<bool> Uncached;
  configureConjunctCache(0);
  for (const Conjunct &C : Pool)
    Uncached.push_back(feasible(C));

  configureConjunctCache(size_t(1) << 14);
  clearConjunctCache();
  for (size_t Round = 0; Round < 2; ++Round)
    for (size_t I = 0; I < Pool.size(); ++I)
      EXPECT_EQ(feasible(Pool[I]), Uncached[I])
          << "conjunct " << I << " round " << Round;

  ConjunctCacheStats S = conjunctCacheStats();
  EXPECT_GT(S.Hits, 0u) << "second round must hit";
  EXPECT_GT(S.Misses, 0u);
  EXPECT_GT(S.Entries, 0u);
}

TEST(ConjunctCache, ProjectionCachedMatchesUncached) {
  CacheGuard Guard;
  std::vector<Conjunct> Pool = randomConjuncts(456, 12);

  std::vector<std::string> Uncached;
  configureConjunctCache(0);
  for (const Conjunct &C : Pool) {
    std::string S;
    for (const Conjunct &R : projectVars(C, {"y"}, ShadowMode::Exact))
      S += R.toString() + ";";
    Uncached.push_back(S);
  }

  configureConjunctCache(size_t(1) << 14);
  clearConjunctCache();
  for (size_t Round = 0; Round < 2; ++Round)
    for (size_t I = 0; I < Pool.size(); ++I) {
      std::string S;
      for (const Conjunct &R : projectVars(Pool[I], {"y"}, ShadowMode::Exact))
        S += R.toString() + ";";
      EXPECT_EQ(S, Uncached[I]) << "conjunct " << I << " round " << Round;
    }
  EXPECT_GT(conjunctCacheStats().Hits, 0u);
}

TEST(ConjunctCache, BoundedSizeEvicts) {
  CacheGuard Guard;
  configureConjunctCache(4);
  clearConjunctCache();
  std::vector<Conjunct> Pool = randomConjuncts(789, 16);
  for (const Conjunct &C : Pool)
    (void)feasible(C);
  ConjunctCacheStats S = conjunctCacheStats();
  // Two caches (feasibility + projection) of capacity 4; only feasibility
  // was exercised, so at most 4 entries may remain.
  EXPECT_LE(S.Entries, 4u);
  EXPECT_GT(S.Evictions, 0u) << "16 distinct keys through capacity 4";
}

TEST(ConjunctCache, ClearResetsEntriesAndStats) {
  CacheGuard Guard;
  configureConjunctCache(size_t(1) << 14);
  clearConjunctCache();
  std::vector<Conjunct> Pool = randomConjuncts(321, 8);
  for (const Conjunct &C : Pool)
    (void)feasible(C);
  EXPECT_GT(conjunctCacheStats().Entries, 0u);
  clearConjunctCache();
  ConjunctCacheStats S = conjunctCacheStats();
  EXPECT_EQ(S.Entries, 0u);
  EXPECT_EQ(S.Hits, 0u);
  EXPECT_EQ(S.Misses, 0u);
}

} // namespace
