//===- tests/PolyTest.cpp - QuasiPolynomial, Faulhaber, PiecewiseValue ---===//

#include "poly/Faulhaber.h"
#include "poly/PiecewiseValue.h"
#include "poly/QuasiPolynomial.h"

#include <gtest/gtest.h>

#include <random>

using namespace omega;

namespace {

QuasiPolynomial var(const char *N) { return QuasiPolynomial::variable(N); }
Rational rat(long long N, long long D = 1) {
  return Rational(BigInt(N), BigInt(D));
}

TEST(AtomTest, ModCanonicalization) {
  // (5n + 7) mod 3 == (2n + 1) mod 3 as atoms.
  AffineExpr E1 = BigInt(5) * AffineExpr::variable("n") + AffineExpr(7);
  AffineExpr E2 = BigInt(2) * AffineExpr::variable("n") + AffineExpr(1);
  EXPECT_EQ(Atom::mod(E1, BigInt(3)), Atom::mod(E2, BigInt(3)));
  // Constant argument folds when built through fromAtom.
  QuasiPolynomial P = QuasiPolynomial::fromAtom(
      Atom::mod(AffineExpr(7), BigInt(3)));
  EXPECT_TRUE(P.isConstant());
  EXPECT_EQ(P.constantValue(), rat(1));
}

TEST(AtomTest, ModConstantFoldsWhenModulusDividesCoefficients) {
  // Table-driven: when the modulus divides every variable coefficient the
  // canonicalized argument is a bare constant, so fromAtom must fold the
  // atom to (constant mod m) — no periodic term survives.
  struct Case {
    int64_t CoeffN, CoeffM, Constant, Modulus, Folded;
  };
  const Case Cases[] = {
      {6, 9, 7, 3, 1},   // (6n + 9m + 7) mod 3 == 1
      {4, 0, 0, 2, 0},   // (4n) mod 2 == 0
      {-6, 12, -5, 3, 1},  // negative coefficients and constant
      {10, 5, 13, 5, 3},   // (10n + 5m + 13) mod 5 == 3
  };
  for (const Case &C : Cases) {
    AffineExpr E = BigInt(C.CoeffN) * AffineExpr::variable("n") +
                   BigInt(C.CoeffM) * AffineExpr::variable("m") +
                   AffineExpr(C.Constant);
    Atom A = Atom::mod(E, BigInt(C.Modulus));
    EXPECT_TRUE(A.arg().isConstant())
        << "canonicalization left a variable in " << C.CoeffN << "n + "
        << C.CoeffM << "m + " << C.Constant << " mod " << C.Modulus;
    QuasiPolynomial P = QuasiPolynomial::fromAtom(A);
    EXPECT_TRUE(P.isConstant());
    EXPECT_EQ(P.constantValue(), rat(C.Folded));
  }
  // Contrast: a coefficient the modulus does not divide keeps the term.
  QuasiPolynomial Q = QuasiPolynomial::fromAtom(
      Atom::mod(BigInt(2) * AffineExpr::variable("n"), BigInt(4)));
  EXPECT_FALSE(Q.isConstant());
}

TEST(AtomTest, Evaluate) {
  Atom M = Atom::mod(AffineExpr::variable("n"), BigInt(4));
  EXPECT_EQ(M.evaluate({{"n", BigInt(7)}}).toInt64(), 3);
  EXPECT_EQ(M.evaluate({{"n", BigInt(-1)}}).toInt64(), 3);
  EXPECT_EQ(M.evaluate({{"n", BigInt(8)}}).toInt64(), 0);
  Atom S = Atom::symbol("n");
  EXPECT_EQ(S.evaluate({{"n", BigInt(5)}}).toInt64(), 5);
}

TEST(QuasiPolynomialTest, RingOperations) {
  QuasiPolynomial P = var("n") * var("n") + var("n") * rat(2) +
                      QuasiPolynomial(rat(1));
  // (n + 1)^2.
  QuasiPolynomial Q =
      QuasiPolynomial::pow(var("n") + QuasiPolynomial(rat(1)), 2);
  EXPECT_EQ(P, Q);
  EXPECT_TRUE((P - Q).isZero());
  EXPECT_EQ(P.evaluate({{"n", BigInt(3)}}), rat(16));
  EXPECT_EQ((P * Q).evaluate({{"n", BigInt(2)}}), rat(81));
  EXPECT_EQ((-P).evaluate({{"n", BigInt(3)}}), rat(-16));
}

TEST(QuasiPolynomialTest, CoefficientsOf) {
  // 3v^2*n + v - 7, coefficients in v.
  QuasiPolynomial P = var("v") * var("v") * var("n") * rat(3) + var("v") -
                      QuasiPolynomial(rat(7));
  std::vector<QuasiPolynomial> C = P.coefficientsOf("v");
  ASSERT_EQ(C.size(), 3u);
  EXPECT_EQ(C[0], QuasiPolynomial(rat(-7)));
  EXPECT_EQ(C[1], QuasiPolynomial(rat(1)));
  EXPECT_EQ(C[2], var("n") * rat(3));
  EXPECT_EQ(P.degreeIn("v"), 2u);
  EXPECT_EQ(P.degreeIn("w"), 0u);
}

TEST(QuasiPolynomialTest, Substitute) {
  // v := n + 1 in v^2 gives (n+1)^2.
  QuasiPolynomial P = var("v") * var("v");
  P.substitute("v", var("n") + QuasiPolynomial(rat(1)));
  EXPECT_EQ(P, QuasiPolynomial::pow(var("n") + QuasiPolynomial(rat(1)), 2));
  // Substitution with rational coefficients.
  QuasiPolynomial Q = var("v");
  Q.substitute("v", var("n") * rat(1, 2));
  EXPECT_EQ(Q.evaluate({{"n", BigInt(4)}}), rat(2));
}

TEST(QuasiPolynomialTest, ModAtomsInPolynomials) {
  // n - (n mod 2) is always even; halved it is floor(n/2).
  QuasiPolynomial Floor =
      (var("n") -
       QuasiPolynomial::fromAtom(Atom::mod(AffineExpr::variable("n"),
                                           BigInt(2)))) *
      rat(1, 2);
  for (int64_t N = -7; N <= 7; ++N) {
    int64_t Expected = N >= 0 ? N / 2 : (N - 1) / 2;
    EXPECT_EQ(Floor.evaluate({{"n", BigInt(N)}}), rat(Expected)) << N;
  }
}

TEST(QuasiPolynomialTest, FromAffine) {
  AffineExpr E = BigInt(2) * AffineExpr::variable("i") -
                 BigInt(3) * AffineExpr::variable("j") + AffineExpr(5);
  QuasiPolynomial P = QuasiPolynomial::fromAffine(E);
  EXPECT_EQ(P.evaluate({{"i", BigInt(1)}, {"j", BigInt(2)}}), rat(1));
}

TEST(QuasiPolynomialTest, ToString) {
  QuasiPolynomial P = var("n") * var("n") * rat(3, 4) + var("n") * rat(1, 2) -
                      QuasiPolynomial(rat(1, 4));
  EXPECT_EQ(P.toString(), "3/4*n^2 + 1/2*n - 1/4");
  EXPECT_EQ(QuasiPolynomial().toString(), "0");
}

TEST(BernoulliTest, KnownValues) {
  EXPECT_EQ(bernoulli(0), rat(1));
  EXPECT_EQ(bernoulli(1), rat(1, 2)); // B+ convention.
  EXPECT_EQ(bernoulli(2), rat(1, 6));
  EXPECT_EQ(bernoulli(3), rat(0));
  EXPECT_EQ(bernoulli(4), rat(-1, 30));
  EXPECT_EQ(bernoulli(6), rat(1, 42));
  EXPECT_EQ(bernoulli(8), rat(-1, 30));
  EXPECT_EQ(bernoulli(10), rat(5, 66));
  EXPECT_EQ(bernoulli(12), rat(-691, 2730));
}

TEST(BinomialTest, Basics) {
  EXPECT_EQ(binomial(5, 2).toInt64(), 10);
  EXPECT_EQ(binomial(10, 0).toInt64(), 1);
  EXPECT_EQ(binomial(10, 10).toInt64(), 1);
  EXPECT_EQ(binomial(3, 5).toInt64(), 0);
  EXPECT_EQ(binomial(50, 25).toString(), "126410606437752");
}

/// The CRC-table closed forms the paper references in §4.1.
TEST(FaulhaberTest, ClassicFormulas) {
  QuasiPolynomial N = var("n");
  // Σ 1 = n.
  EXPECT_EQ(faulhaber(0, N), N);
  // Σ i = n(n+1)/2.
  EXPECT_EQ(faulhaber(1, N), (N * N + N) * rat(1, 2));
  // Σ i² = n(n+1)(2n+1)/6.
  EXPECT_EQ(faulhaber(2, N),
            N * N * N * rat(1, 3) + N * N * rat(1, 2) + N * rat(1, 6));
  // Σ i³ = (n(n+1)/2)².
  EXPECT_EQ(faulhaber(3, N),
            QuasiPolynomial::pow((N * N + N) * rat(1, 2), 2));
}

/// S_p(X) - S_p(X-1) = X^p as a polynomial identity, p up to 10 (the
/// paper hard-codes formulas to p = 10).
TEST(FaulhaberTest, TelescopingIdentity) {
  QuasiPolynomial X = var("x");
  for (unsigned P = 0; P <= 10; ++P) {
    QuasiPolynomial Diff =
        faulhaber(P, X) - faulhaber(P, X - QuasiPolynomial(rat(1)));
    EXPECT_EQ(Diff, QuasiPolynomial::pow(X, P)) << "p = " << P;
  }
}

TEST(FaulhaberTest, NumericAgreement) {
  for (unsigned P = 0; P <= 6; ++P) {
    QuasiPolynomial S = faulhaber(P, var("n"));
    for (int64_t N = 0; N <= 12; ++N) {
      BigInt Expected(0);
      for (int64_t I = 1; I <= N; ++I)
        Expected += BigInt::pow(BigInt(I), P);
      EXPECT_EQ(S.evaluate({{"n", BigInt(N)}}), Rational(Expected))
          << "p=" << P << " n=" << N;
    }
  }
}

/// powerSumRange is exact for negative and mixed ranges — the behaviour
/// the paper's four-piece decomposition of §4.2 exists to provide.
TEST(FaulhaberTest, RangeWithNegatives) {
  std::mt19937_64 Rng(3);
  for (int Trial = 0; Trial < 200; ++Trial) {
    int64_t L = int64_t(Rng() % 21) - 10;
    int64_t U = L + int64_t(Rng() % 12);
    unsigned P = Rng() % 5;
    QuasiPolynomial R = powerSumRange(P, QuasiPolynomial(rat(L)),
                                      QuasiPolynomial(rat(U)));
    BigInt Expected(0);
    for (int64_t V = L; V <= U; ++V)
      Expected += BigInt::pow(BigInt(V), P);
    ASSERT_TRUE(R.isConstant());
    EXPECT_EQ(R.constantValue(), Rational(Expected))
        << "p=" << P << " [" << L << "," << U << "]";
  }
}

TEST(PiecewiseValueTest, EvaluateSumsMatchingPieces) {
  PiecewiseValue V;
  Conjunct G1; // n >= 1.
  G1.add(Constraint::ge(AffineExpr::variable("n") - AffineExpr(1)));
  Conjunct G2; // n >= 5.
  G2.add(Constraint::ge(AffineExpr::variable("n") - AffineExpr(5)));
  V.add({G1, var("n")});
  V.add({G2, QuasiPolynomial(rat(100))});
  EXPECT_EQ(V.evaluate({{"n", BigInt(0)}}), rat(0));
  EXPECT_EQ(V.evaluate({{"n", BigInt(3)}}), rat(3));
  EXPECT_EQ(V.evaluate({{"n", BigInt(7)}}), rat(107));
  EXPECT_EQ(V.evaluateInt({{"n", BigInt(7)}}).toInt64(), 107);
}

TEST(PiecewiseValueTest, MergeSyntactic) {
  PiecewiseValue V;
  Conjunct G;
  G.add(Constraint::ge(AffineExpr::variable("n")));
  V.add({G, var("n")});
  V.add({G, var("n") * rat(-1)});
  V.add({G, QuasiPolynomial(rat(2))});
  V.mergeSyntactic();
  ASSERT_EQ(V.pieces().size(), 1u);
  EXPECT_EQ(V.pieces()[0].Value, QuasiPolynomial(rat(2)));
}

TEST(PiecewiseValueTest, UnboundedAndPrinting) {
  EXPECT_TRUE(PiecewiseValue::unbounded().isUnbounded());
  EXPECT_EQ(PiecewiseValue::unbounded().toString(), "<unbounded>");
  EXPECT_EQ(PiecewiseValue().toString(), "0");
  PiecewiseValue V(QuasiPolynomial(rat(5)));
  EXPECT_EQ(V.toString(), "(5)");
  V *= rat(2);
  EXPECT_EQ(V.evaluate({}), rat(10));
}

} // namespace
