//===- tests/FormulaParserTest.cpp - Formula AST, lowering, parser -------===//

#include "presburger/Conjunct.h"
#include "presburger/Formula.h"
#include "presburger/NonLinear.h"
#include "presburger/Parser.h"

#include <gtest/gtest.h>

using namespace omega;

namespace {

AffineExpr var(const char *N) { return AffineExpr::variable(N); }

TEST(FormulaTest, ConstantFolding) {
  EXPECT_TRUE(Formula::trueFormula().isTrue());
  EXPECT_TRUE(Formula::falseFormula().isFalse());
  EXPECT_TRUE(Formula::atom(Constraint::ge(AffineExpr(1))).isTrue());
  EXPECT_TRUE(Formula::atom(Constraint::ge(AffineExpr(-1))).isFalse());
  EXPECT_TRUE(
      Formula::conj({Formula::trueFormula(), Formula::trueFormula()})
          .isTrue());
  EXPECT_TRUE(
      Formula::conj({Formula::trueFormula(), Formula::falseFormula()})
          .isFalse());
  EXPECT_TRUE(
      Formula::disj({Formula::falseFormula(), Formula::trueFormula()})
          .isTrue());
  EXPECT_TRUE(Formula::negation(Formula::trueFormula()).isFalse());
  Formula A = Formula::atom(Constraint::ge(var("x")));
  EXPECT_EQ(Formula::negation(Formula::negation(A)).toString(), A.toString());
}

TEST(FormulaTest, FlatteningAndQuantifierMerging) {
  Formula A = Formula::atom(Constraint::ge(var("x")));
  Formula B = Formula::atom(Constraint::ge(var("y")));
  Formula C = Formula::atom(Constraint::ge(var("z")));
  Formula Nested = Formula::conj({A, Formula::conj({B, C})});
  EXPECT_EQ(Nested.kind(), FormulaKind::And);
  EXPECT_EQ(Nested.children().size(), 3u);
  Formula E = Formula::exists({"x"}, Formula::exists({"y"}, A && B));
  EXPECT_EQ(E.kind(), FormulaKind::Exists);
  EXPECT_EQ(E.quantified().size(), 2u);
  // exists over True folds away.
  EXPECT_TRUE(Formula::exists({"x"}, Formula::trueFormula()).isTrue());
}

TEST(FormulaTest, FreeVars) {
  Formula F = Formula::exists(
      {"i"}, Formula::atom(Constraint::eq(var("i") - var("n"))) &&
                 Formula::atom(Constraint::ge(var("m") - var("i"))));
  VarSet Free = F.freeVars();
  EXPECT_EQ(Free, (VarSet{"n", "m"}));
}

TEST(FormulaTest, EvaluateQuantifierFree) {
  Formula F = Formula::atom(Constraint::ge(var("x") - AffineExpr(3))) ||
              Formula::atom(Constraint::eq(var("x") + AffineExpr(1)));
  EXPECT_TRUE(F.evaluate({{"x", BigInt(5)}}));
  EXPECT_TRUE(F.evaluate({{"x", BigInt(-1)}}));
  EXPECT_FALSE(F.evaluate({{"x", BigInt(0)}}));
  Formula N = !F;
  EXPECT_TRUE(N.evaluate({{"x", BigInt(0)}}));
}

TEST(NonLinearTest, FloorLoweringSemantics) {
  // For e = 7 and c = 3, the unique witness is alpha = 2.
  LoweredExpr L = lowerFloor(var("n"), BigInt(3));
  ASSERT_EQ(L.Side.wildcards().size(), 1u);
  std::string Alpha = *L.Side.wildcards().begin();
  for (int64_t N = -10; N <= 10; ++N) {
    int64_t Expected = N >= 0 ? N / 3 : (N - 2) / 3;
    int Witnesses = 0;
    for (int64_t A = -10; A <= 10; ++A) {
      Assignment Vals{{"n", BigInt(N)}, {Alpha, BigInt(A)}};
      bool Holds = true;
      for (const Constraint &C : L.Side.constraints())
        Holds = Holds && C.holds(Vals);
      if (Holds) {
        ++Witnesses;
        EXPECT_EQ(L.Expr.evaluate(Vals).toInt64(), Expected);
      }
    }
    EXPECT_EQ(Witnesses, 1) << "floor witness not unique for n=" << N;
  }
}

TEST(NonLinearTest, CeilAndModSemantics) {
  LoweredExpr Ceil = lowerCeil(var("n"), BigInt(4));
  LoweredExpr Mod = lowerMod(var("n"), BigInt(4));
  std::string B = *Ceil.Side.wildcards().begin();
  std::string G = *Mod.Side.wildcards().begin();
  for (int64_t N = -9; N <= 9; ++N) {
    int64_t ExpCeil = (N >= 0 ? (N + 3) / 4 : N / 4);
    int64_t ExpMod = ((N % 4) + 4) % 4;
    for (int64_t W = -10; W <= 10; ++W) {
      Assignment CV{{"n", BigInt(N)}, {B, BigInt(W)}};
      bool CH = true;
      for (const Constraint &C : Ceil.Side.constraints())
        CH = CH && C.holds(CV);
      if (CH) {
        EXPECT_EQ(Ceil.Expr.evaluate(CV).toInt64(), ExpCeil);
      }
      Assignment MV{{"n", BigInt(N)}, {G, BigInt(W)}};
      bool MH = true;
      for (const Constraint &C : Mod.Side.constraints())
        MH = MH && C.holds(MV);
      if (MH) {
        EXPECT_EQ(Mod.Expr.evaluate(MV).toInt64(), ExpMod);
      }
    }
  }
}

TEST(ConjunctTest, MergeRefreshesWildcards) {
  Conjunct A;
  std::string W = freshWildcard();
  A.addWildcard(W);
  A.add(Constraint::eq(var("x") - var(W.c_str())));
  Conjunct M = Conjunct::merge(A, A);
  EXPECT_EQ(M.wildcards().size(), 2u);
  EXPECT_EQ(M.constraints().size(), 2u);
  EXPECT_FALSE(M.isWildcard(W));
}

TEST(ConjunctTest, StridesToWildcards) {
  Conjunct C;
  C.add(Constraint::stride(BigInt(3), var("n") - AffineExpr(1)));
  C.add(Constraint::ge(var("n")));
  C.stridesToWildcards();
  EXPECT_EQ(C.wildcards().size(), 1u);
  int Eqs = 0, Strides = 0;
  for (const Constraint &K : C.constraints()) {
    Eqs += K.isEq();
    Strides += K.isStride();
  }
  EXPECT_EQ(Eqs, 1);
  EXPECT_EQ(Strides, 0);
}

TEST(ConjunctTest, ContainsAndFreeVars) {
  Conjunct C;
  C.add(Constraint::le(AffineExpr(1), var("i")));
  C.add(Constraint::le(var("i"), var("n")));
  C.add(Constraint::stride(BigInt(2), var("i")));
  EXPECT_TRUE(C.contains({{"i", BigInt(2)}, {"n", BigInt(5)}}));
  EXPECT_FALSE(C.contains({{"i", BigInt(3)}, {"n", BigInt(5)}}));
  EXPECT_FALSE(C.contains({{"i", BigInt(6)}, {"n", BigInt(5)}}));
  EXPECT_EQ(C.freeVars(), (VarSet{"i", "n"}));
}

TEST(ParserTest, SimpleComparisons) {
  Formula F = parseFormulaOrDie("1 <= i && i <= n");
  EXPECT_TRUE(F.evaluate({{"i", BigInt(3)}, {"n", BigInt(5)}}));
  EXPECT_FALSE(F.evaluate({{"i", BigInt(0)}, {"n", BigInt(5)}}));
  Formula Chain = parseFormulaOrDie("1 <= i <= n");
  EXPECT_TRUE(Chain.evaluate({{"i", BigInt(3)}, {"n", BigInt(5)}}));
  EXPECT_FALSE(Chain.evaluate({{"i", BigInt(6)}, {"n", BigInt(5)}}));
}

TEST(ParserTest, CommaLists) {
  // The paper's "1 <= i,j <= n".
  Formula F = parseFormulaOrDie("1 <= i,j <= n");
  Assignment Good{{"i", BigInt(1)}, {"j", BigInt(4)}, {"n", BigInt(4)}};
  Assignment Bad{{"i", BigInt(0)}, {"j", BigInt(4)}, {"n", BigInt(4)}};
  EXPECT_TRUE(F.evaluate(Good));
  EXPECT_FALSE(F.evaluate(Bad));
}

TEST(ParserTest, ArithmeticPrecedence) {
  Formula F = parseFormulaOrDie("2*i + 3 = j - 1");
  EXPECT_TRUE(F.evaluate({{"i", BigInt(1)}, {"j", BigInt(6)}}));
  EXPECT_FALSE(F.evaluate({{"i", BigInt(1)}, {"j", BigInt(5)}}));
  Formula G = parseFormulaOrDie("-(i + 2) * 3 < 0");
  EXPECT_TRUE(G.evaluate({{"i", BigInt(0)}}));
  EXPECT_FALSE(G.evaluate({{"i", BigInt(-4)}}));
}

TEST(ParserTest, BooleanStructureAndNegation) {
  Formula F = parseFormulaOrDie("(x = 1 || x = 2) && !(x = 2)");
  EXPECT_TRUE(F.evaluate({{"x", BigInt(1)}}));
  EXPECT_FALSE(F.evaluate({{"x", BigInt(2)}}));
  EXPECT_FALSE(F.evaluate({{"x", BigInt(3)}}));
  Formula G = parseFormulaOrDie("not (x = 1 or x = 2)");
  EXPECT_TRUE(G.evaluate({{"x", BigInt(5)}}));
}

TEST(ParserTest, NotEqual) {
  Formula F = parseFormulaOrDie("i != j");
  EXPECT_TRUE(F.evaluate({{"i", BigInt(1)}, {"j", BigInt(2)}}));
  EXPECT_FALSE(F.evaluate({{"i", BigInt(2)}, {"j", BigInt(2)}}));
}

TEST(ParserTest, StrideAtom) {
  Formula F = parseFormulaOrDie("3 | n - 1");
  EXPECT_TRUE(F.evaluate({{"n", BigInt(4)}}));
  EXPECT_FALSE(F.evaluate({{"n", BigInt(5)}}));
}

TEST(ParserTest, ExistsParses) {
  Formula F = parseFormulaOrDie("exists(y: 1 <= y <= 4 && x = 2*y)");
  EXPECT_EQ(F.kind(), FormulaKind::Exists);
  EXPECT_EQ(F.freeVars(), VarSet{"x"});
}

TEST(ParserTest, FloorCeilModParse) {
  Formula F = parseFormulaOrDie("x = floor(n / 3)");
  EXPECT_EQ(F.kind(), FormulaKind::Exists);
  EXPECT_EQ(F.freeVars(), (VarSet{"x", "n"}));
  Formula G = parseFormulaOrDie("n mod 2 = 1");
  EXPECT_EQ(G.freeVars(), VarSet{"n"});
  Formula H = parseFormulaOrDie("x = ceil(n / 4) && (i + j) mod 3 = 0");
  EXPECT_EQ(H.freeVars(), (VarSet{"x", "n", "i", "j"}));
}

TEST(ParserTest, TrueFalseLiterals) {
  EXPECT_TRUE(parseFormulaOrDie("TRUE").isTrue());
  EXPECT_TRUE(parseFormulaOrDie("FALSE").isFalse());
  EXPECT_TRUE(parseFormulaOrDie("TRUE && TRUE").isTrue());
}

TEST(ParserTest, Errors) {
  EXPECT_FALSE(parseFormula("1 <="));
  EXPECT_FALSE(parseFormula("i * j = 3"));    // Nonlinear.
  EXPECT_FALSE(parseFormula("x = 1 &&"));
  EXPECT_FALSE(parseFormula("exists(: x = 1)"));
  EXPECT_FALSE(parseFormula("x # 1"));
  EXPECT_FALSE(parseFormula("x = 1 extra"));
  EXPECT_FALSE(parseFormula(""));
  ParseResult R = parseFormula("x = ");
  ASSERT_FALSE(R);
  EXPECT_NE(R.Error.find("offset"), std::string::npos);
}

TEST(ParserTest, PaperSection26Formula) {
  // The formula the paper reports simplifying in 12 ms (§2.6).
  const char *Text =
      "1 <= i <= 2*n && 1 <= ip <= 2*n && i = ip && "
      "(exists(i2, j2: 1 <= i2 <= 2*n && 1 <= j2 <= n - 1 && i2 < i && "
      "i2 = ip && 2*j2 = i2) || "
      "exists(i2, j2: 1 <= i2 <= 2*n && 1 <= j2 <= n - 1 && i2 < i && "
      "i2 = ip && 2*j2 + 1 = i2))";
  ParseResult R = parseFormula(Text);
  ASSERT_TRUE(R) << R.Error;
  EXPECT_EQ(R.Value->freeVars(), (VarSet{"i", "ip", "n"}));
}

} // namespace
