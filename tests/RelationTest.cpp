//===- tests/RelationTest.cpp - Tuple relation algebra tests -------------===//

#include "counting/Relation.h"

#include "baselines/Enumerator.h"
#include "omega/Verify.h"
#include "presburger/Parser.h"

#include <gtest/gtest.h>

using namespace omega;

namespace {

Rational rat(long long N) { return Rational(BigInt(N)); }

/// {[x] -> [y] : y = x + K, 1 <= x <= n}.
Relation shift(int64_t K) {
  Formula F = parseFormulaOrDie("y = x + " + std::to_string(K) +
                                " && 1 <= x <= n");
  return Relation({"x"}, {"y"}, F);
}

TEST(RelationTest, InverseSwapsTuples) {
  Relation R = shift(2);
  Relation Inv = R.inverse();
  EXPECT_EQ(Inv.inputs(), std::vector<std::string>{"y"});
  EXPECT_EQ(Inv.outputs(), std::vector<std::string>{"x"});
  // (3, 5) in R  <=>  (5, 3) in Inv: compare counts per input.
  PiecewiseValue Fwd = R.countOutputsPerInput();
  Assignment A{{"x", BigInt(3)}, {"n", BigInt(10)}};
  EXPECT_EQ(Fwd.evaluate(A), rat(1));
  PiecewiseValue Bwd = Inv.countOutputsPerInput();
  Assignment B{{"y", BigInt(5)}, {"n", BigInt(10)}};
  EXPECT_EQ(Bwd.evaluate(B), rat(1));
  Assignment C{{"y", BigInt(13)}, {"n", BigInt(10)}};
  EXPECT_EQ(Bwd.evaluate(C), rat(0)); // x = 11 is outside 1..10.
}

TEST(RelationTest, ComposeShiftsAdd) {
  // shift(2) after shift(3) = shift(5) on the overlapping domain.
  Relation R = shift(2).compose(shift(3));
  // Pairs (x, z): z = x + 5 with 1 <= x <= n and 1 <= x + 3 <= n.
  PiecewiseValue Pairs = R.countPairs();
  for (int64_t N = 0; N <= 10; ++N)
    EXPECT_EQ(Pairs.evaluate({{"n", BigInt(N)}}),
              rat(std::max<int64_t>(0, N - 3)))
        << N;
  // Spot-check a pair via the formula.
  EXPECT_TRUE(isSatisfiable(R.body() &&
                            parseFormulaOrDie("x = 1 && y = 6 && n = 10")));
  EXPECT_FALSE(isSatisfiable(R.body() &&
                             parseFormulaOrDie("x = 1 && y = 5 && n = 10")));
}

TEST(RelationTest, UnionIntersectSubtract) {
  Relation A = shift(1);
  Relation B = shift(2);
  Relation U = A.unionWith(B);
  Relation I = A.intersect(B);
  Relation D = U.subtract(B);
  EXPECT_TRUE(I.isEmpty()); // y can't be both x+1 and x+2.
  PiecewiseValue CU = U.countPairs();
  PiecewiseValue CD = D.countPairs();
  for (int64_t N = 1; N <= 8; ++N) {
    EXPECT_EQ(CU.evaluate({{"n", BigInt(N)}}), rat(2 * N)) << N;
    EXPECT_EQ(CD.evaluate({{"n", BigInt(N)}}), rat(N)) << N;
  }
}

TEST(RelationTest, SubsetAndEmpty) {
  Relation A = shift(1);
  // Restrict A to even x.
  Relation AEven({"x"}, {"y"},
                 A.body() && parseFormulaOrDie("2 | x"));
  EXPECT_TRUE(AEven.isSubsetOf(A));
  EXPECT_FALSE(A.isSubsetOf(AEven));
  EXPECT_FALSE(A.isEmpty());
  EXPECT_TRUE(A.subtract(A).isEmpty());
}

TEST(RelationTest, DomainRangeImage) {
  Relation R = shift(3);
  // Domain: 1 <= x <= n; range: 4 <= y <= n + 3.
  EXPECT_TRUE(verifyEquivalent(R.domain(),
                               parseFormulaOrDie("1 <= x <= n")));
  EXPECT_TRUE(verifyEquivalent(R.range(),
                               parseFormulaOrDie("4 <= y <= n + 3")));
  // Image of {1 <= x <= 2}: {4 <= y <= 5} (inside the domain bound n>=2).
  Formula Img = R.image(parseFormulaOrDie("1 <= x <= 2"));
  EXPECT_TRUE(verifyImplies(Img, parseFormulaOrDie("4 <= y <= 5")));
}

TEST(RelationTest, FanOutCounting) {
  // {[i] -> [j] : 1 <= i <= j <= n}: input i has n - i + 1 successors.
  Relation R({"i"}, {"j"}, parseFormulaOrDie("1 <= i <= j <= n"));
  PiecewiseValue Fan = R.countOutputsPerInput();
  for (int64_t N = 5, I = 1; I <= N; ++I)
    EXPECT_EQ(Fan.evaluate({{"i", BigInt(I)}, {"n", BigInt(N)}}),
              rat(N - I + 1))
        << I;
  PiecewiseValue Pairs = R.countPairs();
  for (int64_t N = 0; N <= 8; ++N)
    EXPECT_EQ(Pairs.evaluate({{"n", BigInt(N)}}),
              rat(std::max<int64_t>(0, N * (N + 1) / 2)))
        << N;
}

TEST(RelationTest, ComposeLexicographicSteps) {
  // One wavefront dependence step: (i,j) -> (i+1,j).  Composing it with
  // itself gives (i,j) -> (i+2,j).
  Formula Step = parseFormulaOrDie(
      "ip = i + 1 && jp = j && 1 <= i <= n && 1 <= ip <= n && "
      "1 <= j <= n && 1 <= jp <= n");
  Relation R({"i", "j"}, {"ip", "jp"}, Step);
  Relation RR = R.compose(R);
  PiecewiseValue Pairs = RR.countPairs();
  for (int64_t N = 0; N <= 7; ++N)
    EXPECT_EQ(Pairs.evaluate({{"n", BigInt(N)}}),
              rat(std::max<int64_t>(0, (N - 2) * N)))
        << N;
  // R³ nonempty only when n >= 4.
  Relation R3 = RR.compose(R);
  EXPECT_FALSE(isSatisfiable(R3.body() && parseFormulaOrDie("n = 3")));
  EXPECT_TRUE(isSatisfiable(R3.body() && parseFormulaOrDie("n = 4")));
}

TEST(RelationTest, ToString) {
  Relation R = shift(1);
  std::string S = R.toString();
  EXPECT_NE(S.find("{[x] -> [y]"), std::string::npos);
}

} // namespace
